//! The piecewise-constant throughput trace and its integration primitives.

use serde::{Deserialize, Serialize};

/// Errors constructing a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No segments were supplied.
    Empty,
    /// A segment had non-positive or non-finite duration.
    BadDuration,
    /// A segment had negative or non-finite throughput.
    BadThroughput,
    /// Every segment has zero throughput, so no data can ever be delivered.
    AllZero,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TraceError::Empty => "trace must contain at least one segment",
            TraceError::BadDuration => "segment durations must be positive and finite",
            TraceError::BadThroughput => "segment throughput must be non-negative and finite",
            TraceError::AllZero => "trace delivers zero throughput everywhere",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TraceError {}

/// Precomputed scan state for the batched download-time kernel
/// ([`Trace::times_to_download_with`]).
///
/// The batched kernel's cost has two parts: summing one cycle's volume and
/// walking segments from the cycle start until the request window begins.
/// Both depend only on the trace, not on the request, so a caller issuing
/// many requests against one trace (the offline DP issues one per surviving
/// state per chunk) builds this cache once and reuses it.
///
/// `prefix_secs[i]` is the left-to-right running sum `d_0 + … + d_i` — the
/// exact `pos` value the plain scan would carry at segment `i`, bit for
/// bit, which is what makes the binary-searched skip produce byte-identical
/// download times.
#[derive(Debug, Clone, Default)]
pub struct TraceScanCache {
    prefix_secs: Vec<f64>,
    cycle_kbits: f64,
}

impl TraceScanCache {
    /// Builds the cache for `trace`.
    pub fn new(trace: &Trace) -> Self {
        let mut cache = Self::default();
        cache.rebuild(trace);
        cache
    }

    /// Re-targets the cache at `trace`, reusing the existing allocation
    /// (no heap traffic once capacity covers the largest trace seen).
    pub fn rebuild(&mut self, trace: &Trace) {
        self.prefix_secs.clear();
        let mut acc = 0.0_f64;
        for d in &trace.durations {
            acc += d;
            self.prefix_secs.push(acc);
        }
        self.cycle_kbits = trace
            .durations
            .iter()
            .zip(&trace.kbps)
            .map(|(d, c)| d * c)
            .sum();
    }
}

/// A piecewise-constant network-throughput signal `C_t`.
///
/// The trace is a sequence of `(duration_secs, kbps)` segments starting at
/// `t = 0`. Beyond its end the trace **wraps around cyclically** — the paper
/// concatenates measurement sets "to match the length of the video", and
/// rebuffering can stretch wall-clock time past any fixed trace length, so
/// cyclic extension keeps every experiment well defined without special
/// cases.
///
/// ```
/// use abr_trace::Trace;
///
/// // 10 s at 1 Mbps, then 10 s at 2 Mbps.
/// let trace = Trace::new(vec![(10.0, 1000.0), (10.0, 2000.0)]).unwrap();
/// assert_eq!(trace.kbps_at(12.0), 2000.0);
/// // Downloading 15,000 kbits from t = 0: 10 s at 1000 then 2.5 s at 2000.
/// assert!((trace.time_to_download(15_000.0, 0.0) - 12.5).abs() < 1e-9);
/// assert_eq!(trace.mean_kbps(), 1500.0);
/// ```
///
/// Segments may have zero throughput (outages); construction only fails if
/// *all* segments are zero, because then no download could ever finish.
#[derive(Debug, Clone, PartialEq)]
#[derive(Serialize, Deserialize)]
#[serde(from = "TraceWire")]
pub struct Trace {
    /// Segment durations in seconds (all positive).
    durations: Vec<f64>,
    /// Segment throughputs in kbps (all non-negative, at least one positive).
    kbps: Vec<f64>,
    /// Cached total duration of one cycle.
    total_secs: f64,
    /// Construction-time scan index (see [`TraceIndex`]); rebuilt on
    /// deserialization, never serialized.
    #[serde(skip)]
    index: TraceIndex,
}

/// The serialized shape of a [`Trace`]: exactly the fields the pre-index
/// format wrote, so on-disk traces round-trip unchanged. Deserialization
/// goes through this mirror and rebuilds the scan index.
#[derive(Deserialize)]
#[serde(rename = "Trace")]
struct TraceWire {
    durations: Vec<f64>,
    kbps: Vec<f64>,
    total_secs: f64,
}

impl From<TraceWire> for Trace {
    fn from(w: TraceWire) -> Self {
        let index = TraceIndex::build(&w.durations, &w.kbps);
        Trace {
            durations: w.durations,
            kbps: w.kbps,
            total_secs: w.total_secs,
            index,
        }
    }
}

/// Construction-time index over a trace's segments: the left-to-right
/// running duration sums (`prefix_secs[i] = d_0 + … + d_i`, bit-for-bit the
/// `pos` values the naive scans accumulate) and the one-cycle volume
/// (`cycle_kbits = Σ d_i·c_i`, summed in segment order — the exact value
/// the naive scans recompute on every call).
///
/// The prefix array turns the "walk segments from position 0 until the
/// request window begins" part of [`Trace::integrate_kbits`] and
/// [`Trace::time_to_download`] into a binary search, and a [`TraceCursor`]
/// into an amortized O(1) pointer bump; because the partial sums carry the
/// same bits a naive walk would, the indexed kernels return byte-identical
/// results (proven by the differential proptests below against the
/// preserved [`Trace::naive_integrate_kbits`] /
/// [`Trace::naive_time_to_download`]).
#[derive(Debug, Clone, PartialEq, Default)]
struct TraceIndex {
    prefix_secs: Vec<f64>,
    cycle_kbits: f64,
}

impl TraceIndex {
    fn build(durations: &[f64], kbps: &[f64]) -> Self {
        let mut prefix_secs = Vec::with_capacity(durations.len());
        let mut acc = 0.0_f64;
        for d in durations {
            acc += d;
            prefix_secs.push(acc);
        }
        let cycle_kbits = durations.iter().zip(kbps).map(|(d, c)| d * c).sum();
        Self {
            prefix_secs,
            cycle_kbits,
        }
    }
}

/// A monotone scan cursor for the indexed trace kernels.
///
/// Streaming sessions advance a wall clock that only moves forward, so the
/// in-cycle start position of consecutive [`Trace::integrate_kbits_at`] /
/// [`Trace::time_to_download_at`] calls usually advances too (wrapping at
/// each cycle boundary). The cursor remembers the last located segment and
/// resumes the search there: forward motion is an amortized O(1) pointer
/// bump, a backward jump (cycle wrap, or reuse against a different start
/// time) falls back to the O(log n) binary search. Results are bit-identical
/// to the cursor-less calls for any query order.
///
/// A cursor is tied to the trace it last scanned only by its segment
/// position; [`reset`](TraceCursor::reset) it (or just use a fresh one —
/// construction is allocation-free) when switching traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCursor {
    /// Partition point of `last_rem` in the prefix array.
    seg: usize,
    /// The in-cycle position the cursor is parked at.
    last_rem: f64,
}

impl TraceCursor {
    /// A cursor parked at the cycle start.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-parks the cursor at the cycle start (for reuse across traces).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// First segment index whose running end-position lies strictly past
    /// `rem` — the same answer `prefix.partition_point(|&p| p <= rem)`
    /// gives, reached by bumping forward from the previous location when
    /// the query moved forward.
    fn locate(&mut self, prefix: &[f64], rem: f64) -> usize {
        if rem < self.last_rem || self.seg > prefix.len() {
            // Backward jump (cycle wrap or cursor reuse): re-search.
            self.seg = prefix.partition_point(|&p| p <= rem);
        } else {
            while self.seg < prefix.len() && prefix[self.seg] <= rem {
                self.seg += 1;
            }
        }
        self.last_rem = rem;
        self.seg
    }
}

impl Trace {
    /// Builds a trace from `(duration_secs, kbps)` segments.
    pub fn new(segments: Vec<(f64, f64)>) -> Result<Self, TraceError> {
        if segments.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut durations = Vec::with_capacity(segments.len());
        let mut kbps = Vec::with_capacity(segments.len());
        for (d, c) in segments {
            if !(d > 0.0 && d.is_finite()) {
                return Err(TraceError::BadDuration);
            }
            if !(c >= 0.0 && c.is_finite()) {
                return Err(TraceError::BadThroughput);
            }
            durations.push(d);
            kbps.push(c);
        }
        if kbps.iter().all(|&c| c == 0.0) {
            return Err(TraceError::AllZero);
        }
        let total_secs = durations.iter().sum();
        let index = TraceIndex::build(&durations, &kbps);
        Ok(Self {
            durations,
            kbps,
            total_secs,
            index,
        })
    }

    /// Builds a trace of uniformly spaced samples (e.g. the HSDPA dataset's
    /// 1 s samples or the FCC dataset's 5 s averages).
    pub fn from_samples(sample_secs: f64, samples_kbps: &[f64]) -> Result<Self, TraceError> {
        Self::new(samples_kbps.iter().map(|&c| (sample_secs, c)).collect())
    }

    /// A constant-rate trace — handy for tests and analytic checks.
    pub fn constant(kbps: f64, duration_secs: f64) -> Result<Self, TraceError> {
        Self::new(vec![(duration_secs, kbps)])
    }

    /// Duration of one trace cycle in seconds.
    #[inline]
    pub fn cycle_secs(&self) -> f64 {
        self.total_secs
    }

    /// Number of segments in one cycle.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.durations.len()
    }

    /// `(duration_secs, kbps)` of segment `i` within one cycle.
    pub fn segment(&self, i: usize) -> (f64, f64) {
        (self.durations[i], self.kbps[i])
    }

    /// Instantaneous throughput `C_t` at time `t >= 0` (cyclic).
    pub fn kbps_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0 && t.is_finite(), "time must be non-negative");
        let mut rem = t % self.total_secs;
        for (d, c) in self.durations.iter().zip(&self.kbps) {
            if rem < *d {
                return *c;
            }
            rem -= d;
        }
        // Floating point can leave `rem` microscopically >= the final
        // boundary; that instant belongs to the start of the next cycle.
        self.kbps[0]
    }

    /// Kilobits deliverable over the window `[t0, t1]` (cyclic integration
    /// of `C_t`). O(log n) via the construction-time index; bit-identical
    /// to [`naive_integrate_kbits`](Self::naive_integrate_kbits).
    pub fn integrate_kbits(&self, t0: f64, t1: f64) -> f64 {
        let mut cursor = TraceCursor::new();
        self.integrate_kbits_at(&mut cursor, t0, t1)
    }

    /// [`integrate_kbits`](Self::integrate_kbits) resuming the segment
    /// search from `cursor` — amortized O(1) when consecutive `t0`s move
    /// forward, as a session's wall clock does. `cursor` must only have
    /// been used with this trace (or be fresh / reset).
    pub fn integrate_kbits_at(&self, cursor: &mut TraceCursor, t0: f64, t1: f64) -> f64 {
        assert!(t0 >= 0.0 && t1 >= t0, "invalid window [{t0}, {t1}]");
        let full_cycles = ((t1 - t0) / self.total_secs).floor();
        let kbits = full_cycles * self.index.cycle_kbits;
        let rem_start = t0 % self.total_secs;
        let rem = (t1 - t0) - full_cycles * self.total_secs;
        let start = cursor.locate(&self.index.prefix_secs, rem_start);
        self.integrate_from(start, rem_start, kbits, rem)
    }

    /// The tail of the integration walk, entered at segment `start` (the
    /// first whose running end-position exceeds `rem_start`). From there it
    /// is the naive loop verbatim — same position arithmetic, same bits.
    fn integrate_from(&self, start: usize, rem_start: f64, mut kbits: f64, mut rem: f64) -> f64 {
        let prefix = &self.index.prefix_secs;
        let nseg = self.durations.len();
        // The naive walk reaches segment `start` carrying `pos` equal to the
        // running sum of the skipped durations — exactly `prefix[start-1]`.
        let mut pos = if start == 0 { 0.0 } else { prefix[start - 1] };
        let mut cursor = rem_start;
        let mut i = if start == nseg { 0 } else { start };
        while rem > 1e-12 {
            let d = self.durations[i];
            let c = self.kbps[i];
            i += 1;
            if i == nseg {
                i = 0;
            }
            let seg_end = pos + d;
            if cursor < seg_end {
                let take = (seg_end - cursor).min(rem);
                kbits += take * c;
                rem -= take;
                cursor += take;
            }
            pos = seg_end;
        }
        kbits
    }

    /// Time in seconds to deliver `kbits` kilobits starting at time `t0`
    /// (inverse of [`integrate_kbits`](Self::integrate_kbits)).
    ///
    /// O(log n) via the construction-time index; bit-identical to
    /// [`naive_time_to_download`](Self::naive_time_to_download).
    ///
    /// Returns `f64::INFINITY` only in the impossible-by-invariant case of an
    /// all-zero trace; zero-rate segments simply stall the transfer until the
    /// next non-zero segment.
    pub fn time_to_download(&self, kbits: f64, t0: f64) -> f64 {
        let mut cursor = TraceCursor::new();
        self.time_to_download_at(&mut cursor, kbits, t0)
    }

    /// [`time_to_download`](Self::time_to_download) resuming the segment
    /// search from `cursor` — amortized O(1) along a forward-moving clock.
    /// `cursor` must only have been used with this trace (or be fresh /
    /// reset).
    pub fn time_to_download_at(&self, cursor: &mut TraceCursor, kbits: f64, t0: f64) -> f64 {
        assert!(kbits >= 0.0 && kbits.is_finite(), "invalid volume {kbits}");
        assert!(t0 >= 0.0 && t0.is_finite(), "invalid start time {t0}");
        if kbits == 0.0 {
            return 0.0;
        }
        let cycle_kbits = self.index.cycle_kbits;
        if cycle_kbits <= 0.0 {
            return f64::INFINITY;
        }
        // Skip whole cycles first so huge transfers stay O(segments).
        let full_cycles = (kbits / cycle_kbits).floor();
        let remaining = kbits - full_cycles * cycle_kbits;
        let elapsed = full_cycles * self.total_secs;
        let rem_start = t0 % self.total_secs;
        let start = cursor.locate(&self.index.prefix_secs, rem_start);
        self.time_to_download_from(start, rem_start, remaining, elapsed)
    }

    /// The tail of the download-time walk, entered at segment `start`. The
    /// iteration budget deducts the skipped segments so it matches the
    /// naive scan's `.take(2 * nseg + 2)` cap exactly.
    fn time_to_download_from(
        &self,
        start: usize,
        rem_start: f64,
        mut remaining: f64,
        mut elapsed: f64,
    ) -> f64 {
        let prefix = &self.index.prefix_secs;
        let nseg = self.durations.len();
        let mut pos = if start == 0 { 0.0 } else { prefix[start - 1] };
        let mut cursor = rem_start;
        let mut i = if start == nseg { 0 } else { start };
        let mut budget = 2 * nseg + 2 - start;
        while budget > 0 && remaining > 1e-12 {
            budget -= 1;
            let d = self.durations[i];
            let c = self.kbps[i];
            i += 1;
            if i == nseg {
                i = 0;
            }
            let seg_end = pos + d;
            if cursor < seg_end {
                let avail_secs = seg_end - cursor;
                let seg_kbits = avail_secs * c;
                if seg_kbits >= remaining && c > 0.0 {
                    elapsed += remaining / c;
                    remaining = 0.0;
                    break;
                }
                remaining -= seg_kbits;
                elapsed += avail_secs;
                cursor = seg_end;
            }
            pos = seg_end;
        }
        if remaining > 1e-12 {
            // Only reachable when every remaining segment in the cycle is
            // zero-rate but the cycle as a whole is not (cannot happen: we
            // scanned two full cycles above). Defensive fallback.
            return f64::INFINITY;
        }
        elapsed
    }

    /// The pre-index integration scan, retained verbatim as the differential
    /// oracle for [`integrate_kbits`](Self::integrate_kbits): it re-sums the
    /// cycle volume and walks segments from position 0 on every call.
    pub fn naive_integrate_kbits(&self, t0: f64, t1: f64) -> f64 {
        assert!(t0 >= 0.0 && t1 >= t0, "invalid window [{t0}, {t1}]");
        let full_cycles = ((t1 - t0) / self.total_secs).floor();
        let cycle_kbits: f64 = self
            .durations
            .iter()
            .zip(&self.kbps)
            .map(|(d, c)| d * c)
            .sum();
        let mut kbits = full_cycles * cycle_kbits;
        let rem_start = t0 % self.total_secs;
        let mut rem = (t1 - t0) - full_cycles * self.total_secs;
        let mut pos = 0.0;
        let mut cursor = rem_start;
        for (d, c) in self.durations.iter().cycle().zip(self.kbps.iter().cycle()) {
            if rem <= 1e-12 {
                break;
            }
            let seg_end = pos + d;
            if cursor < seg_end {
                let take = (seg_end - cursor).min(rem);
                kbits += take * c;
                rem -= take;
                cursor += take;
            }
            pos = seg_end;
        }
        kbits
    }

    /// The pre-index download-time scan, retained verbatim as the
    /// differential oracle for [`time_to_download`](Self::time_to_download).
    pub fn naive_time_to_download(&self, kbits: f64, t0: f64) -> f64 {
        assert!(kbits >= 0.0 && kbits.is_finite(), "invalid volume {kbits}");
        assert!(t0 >= 0.0 && t0.is_finite(), "invalid start time {t0}");
        if kbits == 0.0 {
            return 0.0;
        }
        let cycle_kbits: f64 = self
            .durations
            .iter()
            .zip(&self.kbps)
            .map(|(d, c)| d * c)
            .sum();
        if cycle_kbits <= 0.0 {
            return f64::INFINITY;
        }
        // Skip whole cycles first so huge transfers stay O(segments).
        let full_cycles = (kbits / cycle_kbits).floor();
        let mut remaining = kbits - full_cycles * cycle_kbits;
        let mut elapsed = full_cycles * self.total_secs;
        let mut cursor = t0 % self.total_secs;
        let mut pos = 0.0;
        // At most two passes over the segments are needed for the remainder.
        for (d, c) in self
            .durations
            .iter()
            .cycle()
            .zip(self.kbps.iter().cycle())
            .take(2 * self.durations.len() + 2)
        {
            if remaining <= 1e-12 {
                break;
            }
            let seg_end = pos + d;
            if cursor < seg_end {
                let avail_secs = seg_end - cursor;
                let seg_kbits = avail_secs * c;
                if seg_kbits >= remaining && *c > 0.0 {
                    elapsed += remaining / c;
                    remaining = 0.0;
                    break;
                }
                remaining -= seg_kbits;
                elapsed += avail_secs;
                cursor = seg_end;
            }
            pos = seg_end;
        }
        if remaining > 1e-12 {
            return f64::INFINITY;
        }
        elapsed
    }

    /// Download times for several volumes starting at the same instant, in
    /// one pass over the trace: `times_to_download(&sizes, t0)[i]` equals
    /// `time_to_download(sizes[i], t0)`. `sizes` must be ascending. This is
    /// the hot primitive of the offline dynamic program, which evaluates
    /// every candidate bitrate from a common state.
    pub fn times_to_download(&self, kbits_ascending: &[f64], t0: f64) -> Vec<f64> {
        let cache = TraceScanCache::new(self);
        let mut out = Vec::new();
        self.times_to_download_with(&cache, kbits_ascending, t0, &mut out);
        out
    }

    /// Allocation-free core of [`times_to_download`](Self::times_to_download):
    /// results are appended to `out` (which is cleared first), and the cycle
    /// volume / segment prefix sums come from `cache` instead of being
    /// recomputed per call. `cache` must have been built (or rebuilt) for
    /// this trace. Output is bit-identical to `times_to_download`.
    pub fn times_to_download_with(
        &self,
        cache: &TraceScanCache,
        kbits_ascending: &[f64],
        t0: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        self.for_each_download_time(cache, kbits_ascending, t0, |_, dl| out.push(dl));
        // Targets a zero-volume cycle can never deliver are reported as
        // INFINITY rather than omitted.
        if out.len() < kbits_ascending.len() {
            out.resize(kbits_ascending.len(), f64::INFINITY);
        }
    }

    /// Streaming form of [`times_to_download_with`](Self::times_to_download_with):
    /// `emit(i, dl)` is called with each target's download time, in index
    /// order, as the single trace pass reaches it. Targets a zero-volume
    /// cycle cannot deliver are never emitted (their time is infinite).
    /// Consumers that fold each time into an update the moment it is known
    /// (the offline DP) skip the round-trip through an output buffer.
    pub fn for_each_download_time(
        &self,
        cache: &TraceScanCache,
        kbits_ascending: &[f64],
        t0: f64,
        mut emit: impl FnMut(usize, f64),
    ) {
        assert!(t0 >= 0.0 && t0.is_finite(), "invalid start time {t0}");
        debug_assert!(
            kbits_ascending.windows(2).all(|w| w[1] >= w[0]),
            "sizes must be ascending"
        );
        debug_assert_eq!(
            cache.prefix_secs.len(),
            self.durations.len(),
            "scan cache does not match this trace"
        );
        // Serve zero-size requests immediately.
        let mut served = 0;
        while served < kbits_ascending.len() && kbits_ascending[served] == 0.0 {
            emit(served, 0.0);
            served += 1;
        }
        if served == kbits_ascending.len() {
            return;
        }
        let cycle_kbits = cache.cycle_kbits;
        if cycle_kbits <= 0.0 {
            return;
        }
        // Whole-cycle fast-forward shared by all targets (based on the
        // smallest unserved one; larger targets just keep cycling).
        let base_cycles = (kbits_ascending[served] / cycle_kbits).floor();
        let mut delivered = base_cycles * cycle_kbits;
        let mut elapsed = base_cycles * self.total_secs;
        let cursor_start = t0 % self.total_secs;
        // First segment whose end lies past the cursor. A plain scan would
        // walk `pos = ((0 + d_0) + d_1) + …` past every earlier segment;
        // `prefix_secs` holds exactly those partial sums, so the binary
        // search lands on the same segment with the same `pos` bits.
        let start = cache.prefix_secs.partition_point(|&p| p <= cursor_start);
        let mut cursor = cursor_start;
        let mut pos = if start == 0 {
            0.0
        } else {
            cache.prefix_secs[start - 1]
        };
        let nseg = self.durations.len();
        let mut i = if start == nseg { 0 } else { start };
        while served < kbits_ascending.len() {
            let d = self.durations[i];
            let c = self.kbps[i];
            i += 1;
            if i == nseg {
                i = 0;
            }
            let seg_end = pos + d;
            if cursor < seg_end {
                let avail_secs = seg_end - cursor;
                let seg_kbits = avail_secs * c;
                // Emit every target this segment satisfies.
                while served < kbits_ascending.len() {
                    let need = kbits_ascending[served] - delivered;
                    if need <= seg_kbits + 1e-12 && c > 0.0 {
                        emit(served, elapsed + (need.max(0.0)) / c);
                        served += 1;
                    } else if need <= 1e-12 {
                        emit(served, elapsed);
                        served += 1;
                    } else {
                        break;
                    }
                }
                delivered += seg_kbits;
                elapsed += avail_secs;
                cursor = seg_end;
            }
            pos = seg_end;
        }
    }

    /// The next instant strictly after `t` at which the (cyclic) trace
    /// changes rate — a segment boundary or the cycle wrap. Event-driven
    /// consumers (the multi-player bottleneck) advance in these steps so
    /// rate is constant between events.
    pub fn next_boundary_after(&self, t: f64) -> f64 {
        assert!(t >= 0.0 && t.is_finite(), "invalid time {t}");
        let cycle_idx = (t / self.total_secs).floor();
        let pos = t - cycle_idx * self.total_secs;
        let mut acc = 0.0;
        for d in &self.durations {
            acc += d;
            if acc > pos + 1e-12 {
                let b = cycle_idx * self.total_secs + acc;
                // "Strictly after" must survive rounding: when `t` sits
                // exactly on a boundary whose recomputed position collapses
                // onto `t` (floor() picked the previous cycle and `pos`
                // landed within the tolerance of the cycle end), returning
                // `b == t` would stall event-driven callers that advance
                // with `now = next_boundary_after(now)`. Skip to the next
                // boundary instead.
                if b > t {
                    return b;
                }
            }
        }
        let wrap = (cycle_idx + 1.0) * self.total_secs;
        if wrap > t {
            return wrap;
        }
        // Same rounding collapse at the cycle wrap itself: `t` is at (or
        // has absorbed) the cycle end, so the answer is the first boundary
        // of the following cycle.
        let mut acc = 0.0;
        for d in &self.durations {
            acc += d;
            let b = wrap + acc;
            if b > t {
                return b;
            }
        }
        wrap + self.total_secs
    }

    /// Average throughput over one cycle, kbps (time-weighted).
    pub fn mean_kbps(&self) -> f64 {
        self.durations
            .iter()
            .zip(&self.kbps)
            .map(|(d, c)| d * c)
            .sum::<f64>()
            / self.total_secs
    }

    /// Time-weighted standard deviation of throughput over one cycle, kbps.
    pub fn std_kbps(&self) -> f64 {
        let mean = self.mean_kbps();
        let var = self
            .durations
            .iter()
            .zip(&self.kbps)
            .map(|(d, c)| d * (c - mean) * (c - mean))
            .sum::<f64>()
            / self.total_secs;
        var.sqrt()
    }

    /// Minimum segment throughput in kbps.
    pub fn min_kbps(&self) -> f64 {
        self.kbps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum segment throughput in kbps.
    pub fn max_kbps(&self) -> f64 {
        self.kbps.iter().copied().fold(0.0, f64::max)
    }

    /// Returns a new trace with every throughput multiplied by `factor > 0`.
    pub fn scaled(&self, factor: f64) -> Trace {
        assert!(factor > 0.0 && factor.is_finite(), "bad scale {factor}");
        let kbps: Vec<f64> = self.kbps.iter().map(|c| c * factor).collect();
        let index = TraceIndex::build(&self.durations, &kbps);
        Trace {
            durations: self.durations.clone(),
            kbps,
            // Durations are untouched, so the cached cycle length carries
            // over bit-for-bit (and matches the rebuilt prefix sums).
            total_secs: self.total_secs,
            index,
        }
    }

    /// Concatenates `other` after `self` (the FCC-style trace-stitching
    /// operation).
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut durations = self.durations.clone();
        let mut kbps = self.kbps.clone();
        durations.extend_from_slice(&other.durations);
        kbps.extend_from_slice(&other.kbps);
        let index = TraceIndex::build(&durations, &kbps);
        Trace {
            // Keep the historical `a.total + b.total` association rather
            // than re-summing all durations: the two can differ in the last
            // bit, and every existing scan keys off this cached value.
            total_secs: self.total_secs + other.total_secs,
            durations,
            kbps,
            index,
        }
    }

    /// The sub-trace covering `[t0, t0 + len_secs)` of one cycle, clamped to
    /// the cycle end. Panics if the window is empty after clamping.
    pub fn window(&self, t0: f64, len_secs: f64) -> Trace {
        assert!(t0 >= 0.0 && t0 < self.total_secs, "window start out of range");
        let t1 = (t0 + len_secs).min(self.total_secs);
        let mut segs = Vec::new();
        let mut pos = 0.0;
        for (d, c) in self.durations.iter().zip(&self.kbps) {
            let seg_start = pos;
            let seg_end = pos + d;
            let lo = seg_start.max(t0);
            let hi = seg_end.min(t1);
            if hi > lo {
                segs.push((hi - lo, *c));
            }
            pos = seg_end;
            if pos >= t1 {
                break;
            }
        }
        Trace::new(segs).expect("non-empty window of a valid trace")
    }

    /// Per-segment samples as `(start_secs, duration_secs, kbps)` tuples.
    pub fn segments(&self) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::with_capacity(self.durations.len());
        let mut pos = 0.0;
        for (d, c) in self.durations.iter().zip(&self.kbps) {
            out.push((pos, *d, *c));
            pos += d;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn steps() -> Trace {
        // 10s at 1000, 10s at 2000, 10s at 500.
        Trace::new(vec![(10.0, 1000.0), (10.0, 2000.0), (10.0, 500.0)]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert_eq!(Trace::new(vec![]).unwrap_err(), TraceError::Empty);
        assert_eq!(
            Trace::new(vec![(0.0, 100.0)]).unwrap_err(),
            TraceError::BadDuration
        );
        assert_eq!(
            Trace::new(vec![(1.0, -5.0)]).unwrap_err(),
            TraceError::BadThroughput
        );
        assert_eq!(
            Trace::new(vec![(1.0, 0.0), (2.0, 0.0)]).unwrap_err(),
            TraceError::AllZero
        );
        assert!(Trace::new(vec![(1.0, 0.0), (2.0, 10.0)]).is_ok());
    }

    #[test]
    fn kbps_at_segments_and_wrap() {
        let t = steps();
        assert_eq!(t.kbps_at(0.0), 1000.0);
        assert_eq!(t.kbps_at(9.999), 1000.0);
        assert_eq!(t.kbps_at(10.0), 2000.0);
        assert_eq!(t.kbps_at(25.0), 500.0);
        // Cyclic wrap.
        assert_eq!(t.kbps_at(30.0), 1000.0);
        assert_eq!(t.kbps_at(45.0), 2000.0);
    }

    #[test]
    fn integrate_matches_hand_math() {
        let t = steps();
        assert!((t.integrate_kbits(0.0, 10.0) - 10_000.0).abs() < 1e-6);
        assert!((t.integrate_kbits(5.0, 15.0) - (5_000.0 + 10_000.0)).abs() < 1e-6);
        // One full cycle = 35,000 kbits.
        assert!((t.integrate_kbits(0.0, 30.0) - 35_000.0).abs() < 1e-6);
        // Two cycles + half of first segment.
        assert!((t.integrate_kbits(0.0, 65.0) - (70_000.0 + 5_000.0)).abs() < 1e-6);
        // Window starting mid-cycle and wrapping.
        assert!((t.integrate_kbits(25.0, 35.0) - (2_500.0 + 5_000.0)).abs() < 1e-6);
    }

    #[test]
    fn time_to_download_basic() {
        let t = steps();
        // 5,000 kbits at 1000 kbps from t=0 -> 5s.
        assert!((t.time_to_download(5_000.0, 0.0) - 5.0).abs() < 1e-9);
        // 15,000 kbits from t=0: 10s @1000 (10k) + 2.5s @2000 (5k) = 12.5s.
        assert!((t.time_to_download(15_000.0, 0.0) - 12.5).abs() < 1e-9);
        // Starting at t=28 (rate 500): 1000 kbits -> 2s @500, wrap to 1000.
        assert!((t.time_to_download(1_000.0, 28.0) - 2.0).abs() < 1e-9);
        assert!((t.time_to_download(2_000.0, 28.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_to_download_zero_volume() {
        assert_eq!(steps().time_to_download(0.0, 7.0), 0.0);
    }

    #[test]
    fn time_to_download_through_outage() {
        // 5s outage between two live segments.
        let t = Trace::new(vec![(5.0, 1000.0), (5.0, 0.0), (5.0, 1000.0)]).unwrap();
        // From t=0: 6,000 kbits = 5s @1000 + 5s stall + 1s @1000 = 11s.
        assert!((t.time_to_download(6_000.0, 0.0) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn time_to_download_many_cycles() {
        let t = steps();
        // 100 cycles worth of data: 3,500,000 kbits -> exactly 3000s.
        let secs = t.time_to_download(3_500_000.0, 0.0);
        assert!((secs - 3000.0).abs() < 1e-6, "{secs}");
    }

    #[test]
    fn next_boundary_steps_through_segments() {
        let t = steps(); // boundaries at 10, 20, 30 (cycle), 40, ...
        assert!((t.next_boundary_after(0.0) - 10.0).abs() < 1e-9);
        assert!((t.next_boundary_after(9.999) - 10.0).abs() < 1e-9);
        assert!((t.next_boundary_after(10.0) - 20.0).abs() < 1e-9);
        assert!((t.next_boundary_after(25.0) - 30.0).abs() < 1e-9);
        // Wraps cyclically.
        assert!((t.next_boundary_after(30.0) - 40.0).abs() < 1e-9);
        assert!((t.next_boundary_after(95.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn next_boundary_is_strictly_after_at_rounded_cycle_ends() {
        // Regression: with this duration, fl(2T + T) lands on a float where
        // floor(t/T) still picks cycle 2 and the fallback wrap boundary
        // recomputes to exactly t — the pre-fix code returned t itself,
        // livelocking event loops that advance with
        // `now = next_boundary_after(now)` (found by the multiplayer
        // differential harness). Every boundary must be strictly after t.
        let t = Trace::new(vec![(22.512273293823903, 5198.980754919422)]).unwrap();
        let mut now = 0.0_f64;
        for _ in 0..1_000 {
            let b = t.next_boundary_after(now);
            assert!(b > now, "boundary {b} does not advance past {now}");
            now = b;
        }
        // Multi-segment traces too: walk a bumpy cycle for many wraps.
        let t = Trace::new(vec![(7.1000000000000005, 900.0), (11.3, 2400.0)]).unwrap();
        let mut now = 0.0_f64;
        for _ in 0..1_000 {
            let b = t.next_boundary_after(now);
            assert!(b > now, "boundary {b} does not advance past {now}");
            now = b;
        }
    }

    #[test]
    fn mean_and_std() {
        let t = steps();
        let mean = (1000.0 + 2000.0 + 500.0) / 3.0;
        assert!((t.mean_kbps() - mean).abs() < 1e-9);
        let var = ((1000.0f64 - mean).powi(2) + (2000.0 - mean).powi(2) + (500.0 - mean).powi(2))
            / 3.0;
        assert!((t.std_kbps() - var.sqrt()).abs() < 1e-9);
        assert_eq!(t.min_kbps(), 500.0);
        assert_eq!(t.max_kbps(), 2000.0);
    }

    #[test]
    fn constant_trace_roundtrip() {
        let t = Trace::constant(1500.0, 60.0).unwrap();
        assert!((t.time_to_download(1500.0, 13.0) - 1.0).abs() < 1e-9);
        assert_eq!(t.mean_kbps(), 1500.0);
        assert_eq!(t.std_kbps(), 0.0);
    }

    #[test]
    fn scaled_doubles_rate() {
        let t = steps().scaled(2.0);
        assert_eq!(t.kbps_at(0.0), 2000.0);
        assert!((t.time_to_download(10_000.0, 0.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn concat_joins_in_order() {
        let a = Trace::constant(100.0, 5.0).unwrap();
        let b = Trace::constant(200.0, 5.0).unwrap();
        let c = a.concat(&b);
        assert_eq!(c.cycle_secs(), 10.0);
        assert_eq!(c.kbps_at(2.0), 100.0);
        assert_eq!(c.kbps_at(7.0), 200.0);
    }

    #[test]
    fn window_extracts_and_clamps() {
        let t = steps();
        let w = t.window(5.0, 10.0);
        assert_eq!(w.cycle_secs(), 10.0);
        assert_eq!(w.kbps_at(0.0), 1000.0);
        assert_eq!(w.kbps_at(6.0), 2000.0);
        // Clamped at cycle end.
        let w2 = t.window(25.0, 100.0);
        assert_eq!(w2.cycle_secs(), 5.0);
        assert_eq!(w2.kbps_at(0.0), 500.0);
    }

    #[test]
    fn from_samples_uniform_spacing() {
        let t = Trace::from_samples(5.0, &[100.0, 200.0, 300.0]).unwrap();
        assert_eq!(t.cycle_secs(), 15.0);
        assert_eq!(t.kbps_at(11.0), 300.0);
    }

    #[test]
    fn scan_cache_prefix_matches_plain_scan_bits() {
        // Irregular durations so the prefix sums exercise fp accumulation.
        let t = Trace::new(vec![
            (1.7, 900.0),
            (0.3, 0.0),
            (4.9, 2400.0),
            (2.2, 130.0),
        ])
        .unwrap();
        let cache = TraceScanCache::new(&t);
        let sizes = [0.0, 500.0, 1_500.0, 9_000.0, 40_000.0];
        for t0 in [0.0, 0.05, 1.7, 3.31, 8.99, 27.4] {
            let plain = t.times_to_download(&sizes, t0);
            let mut out = Vec::new();
            t.times_to_download_with(&cache, &sizes, t0, &mut out);
            for (a, b) in plain.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "t0={t0}");
            }
        }
    }

    #[test]
    fn scan_cache_rebuild_retargets() {
        let a = steps();
        let b = Trace::new(vec![(3.0, 250.0), (7.0, 4_000.0)]).unwrap();
        let mut cache = TraceScanCache::new(&a);
        cache.rebuild(&b);
        let mut out = Vec::new();
        b.times_to_download_with(&cache, &[1_000.0, 5_000.0], 2.0, &mut out);
        let plain = b.times_to_download(&[1_000.0, 5_000.0], 2.0);
        assert_eq!(out, plain);
    }

    #[test]
    fn cursor_reuse_matches_fresh_cursor() {
        let t = steps();
        let mut cur = TraceCursor::new();
        // Forward-moving, wrapping, then backward-jumping starts.
        let starts = [0.0, 3.0, 9.5, 10.0, 22.0, 29.99, 31.0, 2.0, 58.0, 58.0];
        for &t0 in &starts {
            let a = t.integrate_kbits_at(&mut cur, t0, t0 + 7.3);
            let b = t.integrate_kbits(t0, t0 + 7.3);
            assert_eq!(a.to_bits(), b.to_bits(), "integrate t0={t0}");
            let a = t.time_to_download_at(&mut cur, 4_321.0, t0);
            let b = t.time_to_download(4_321.0, t0);
            assert_eq!(a.to_bits(), b.to_bits(), "ttd t0={t0}");
        }
    }

    #[test]
    fn cursor_reset_allows_switching_traces() {
        let a = steps();
        let b = Trace::new(vec![(3.0, 250.0), (7.0, 4_000.0)]).unwrap();
        let mut cur = TraceCursor::new();
        let _ = a.time_to_download_at(&mut cur, 9_000.0, 25.0);
        cur.reset();
        let got = b.time_to_download_at(&mut cur, 2_000.0, 4.0);
        assert_eq!(got.to_bits(), b.time_to_download(2_000.0, 4.0).to_bits());
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let t = steps();
        let json = serde_json::to_string(&t).unwrap();
        // The wire format carries exactly the pre-index fields.
        assert!(json.contains("durations") && json.contains("kbps") && json.contains("total_secs"));
        assert!(!json.contains("index") && !json.contains("prefix"));
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // The rebuilt index drives identical kernel results.
        assert_eq!(
            back.time_to_download(12_345.0, 17.0).to_bits(),
            t.time_to_download(12_345.0, 17.0).to_bits()
        );
    }

    #[test]
    fn scaled_and_concat_rebuild_index() {
        let a = steps();
        let s = a.scaled(1.7);
        assert_eq!(
            s.time_to_download(9_999.0, 13.0).to_bits(),
            s.naive_time_to_download(9_999.0, 13.0).to_bits()
        );
        let b = Trace::new(vec![(2.5, 0.0), (4.5, 800.0)]).unwrap();
        let c = a.concat(&b);
        assert_eq!(
            c.integrate_kbits(11.0, 52.0).to_bits(),
            c.naive_integrate_kbits(11.0, 52.0).to_bits()
        );
        assert_eq!(
            c.time_to_download(31_000.0, 36.9).to_bits(),
            c.naive_time_to_download(31_000.0, 36.9).to_bits()
        );
    }

    proptest! {
        /// Indexed `integrate_kbits` is bit-identical to the retained naive
        /// scan on random traces (including zero-rate outage segments),
        /// random start times and multi-cycle windows.
        #[test]
        fn indexed_integrate_matches_naive_bits(
            segs in proptest::collection::vec((0.1f64..8.0, 0.0f64..5_000.0), 1..12),
            t0 in 0.0f64..200.0,
            len in 0.0f64..300.0,
        ) {
            prop_assume!(segs.iter().any(|&(_, c)| c > 0.0));
            let t = Trace::new(segs).unwrap();
            let a = t.integrate_kbits(t0, t0 + len);
            let b = t.naive_integrate_kbits(t0, t0 + len);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }

        /// Indexed `time_to_download` is bit-identical to the retained naive
        /// scan, including volumes spanning many cycles and volumes a
        /// zero-heavy cycle stalls on.
        #[test]
        fn indexed_download_time_matches_naive_bits(
            segs in proptest::collection::vec((0.1f64..8.0, 0.0f64..5_000.0), 1..12),
            t0 in 0.0f64..200.0,
            kbits in 0.0f64..500_000.0,
        ) {
            prop_assume!(segs.iter().any(|&(_, c)| c > 0.0));
            let t = Trace::new(segs).unwrap();
            let a = t.time_to_download(kbits, t0);
            let b = t.naive_time_to_download(kbits, t0);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }

        /// A single cursor reused across an arbitrary (not necessarily
        /// monotone) query sequence returns exactly what fresh cursors do.
        #[test]
        fn cursor_sequence_matches_fresh_bits(
            segs in proptest::collection::vec((0.1f64..8.0, 0.0f64..5_000.0), 1..12),
            queries in proptest::collection::vec((0.0f64..120.0, 0.0f64..60_000.0), 1..25),
        ) {
            prop_assume!(segs.iter().any(|&(_, c)| c > 0.0));
            let t = Trace::new(segs).unwrap();
            let mut cur = TraceCursor::new();
            for &(t0, kbits) in &queries {
                let a = t.time_to_download_at(&mut cur, kbits, t0);
                let b = t.naive_time_to_download(kbits, t0);
                prop_assert_eq!(a.to_bits(), b.to_bits());
                let a = t.integrate_kbits_at(&mut cur, t0, t0 + kbits / 1_000.0);
                let b = t.naive_integrate_kbits(t0, t0 + kbits / 1_000.0);
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Integration over [a,b] + [b,c] equals integration over [a,c].
        #[test]
        fn integrate_additive(
            a in 0.0f64..100.0,
            d1 in 0.0f64..50.0,
            d2 in 0.0f64..50.0,
        ) {
            let t = steps();
            let b = a + d1;
            let c = b + d2;
            let lhs = t.integrate_kbits(a, b) + t.integrate_kbits(b, c);
            let rhs = t.integrate_kbits(a, c);
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
        }

        /// time_to_download is the inverse of integrate_kbits.
        #[test]
        fn download_time_inverts_integration(
            t0 in 0.0f64..30.0,
            kbits in 1.0f64..200_000.0,
        ) {
            let t = steps();
            let secs = t.time_to_download(kbits, t0);
            let got = t.integrate_kbits(t0, t0 + secs);
            prop_assert!((got - kbits).abs() < 1e-6 * (1.0 + kbits), "{got} vs {kbits}");
        }

        /// Download time is monotone in volume.
        #[test]
        fn download_time_monotone(
            t0 in 0.0f64..30.0,
            k1 in 1.0f64..100_000.0,
            extra in 0.0f64..100_000.0,
        ) {
            let t = steps();
            prop_assert!(t.time_to_download(k1 + extra, t0) >= t.time_to_download(k1, t0) - 1e-9);
        }

        /// Average over one full cycle equals mean_kbps regardless of phase.
        #[test]
        fn cycle_average_phase_invariant(t0 in 0.0f64..30.0) {
            let t = steps();
            let avg = t.integrate_kbits(t0, t0 + t.cycle_secs()) / t.cycle_secs();
            prop_assert!((avg - t.mean_kbps()).abs() < 1e-6);
        }

        /// The batched download-time helper agrees with the scalar one.
        #[test]
        fn times_to_download_matches_scalar(
            t0 in 0.0f64..30.0,
            raw in proptest::collection::vec(0.0f64..100_000.0, 1..12),
        ) {
            let t = steps();
            let mut sizes = raw;
            sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let batch = t.times_to_download(&sizes, t0);
            prop_assert_eq!(batch.len(), sizes.len());
            for (i, &s) in sizes.iter().enumerate() {
                let scalar = t.time_to_download(s, t0);
                prop_assert!(
                    (batch[i] - scalar).abs() < 1e-6 * (1.0 + scalar),
                    "size {} at t0 {}: batch {} vs scalar {}", s, t0, batch[i], scalar
                );
            }
        }

        /// The cached scan is bit-identical to the allocating one on random
        /// traces, start times and target lists.
        #[test]
        fn cached_scan_is_bit_identical(
            segs in proptest::collection::vec((0.1f64..8.0, 0.0f64..5_000.0), 1..10),
            t0 in 0.0f64..60.0,
            raw in proptest::collection::vec(0.0f64..150_000.0, 0..10),
        ) {
            prop_assume!(segs.iter().any(|&(_, c)| c > 0.0));
            let t = Trace::new(segs).unwrap();
            let mut sizes = raw;
            sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let t0 = t0 % (2.0 * t.cycle_secs());
            let plain = t.times_to_download(&sizes, t0);
            let cache = TraceScanCache::new(&t);
            let mut out = vec![0.0; 3]; // stale contents must be cleared
            t.times_to_download_with(&cache, &sizes, t0, &mut out);
            prop_assert_eq!(plain.len(), out.len());
            for (a, b) in plain.iter().zip(&out) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
