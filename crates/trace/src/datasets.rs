//! Seeded generators for the three trace families of Section 7.1.1.
//!
//! The paper evaluates on (1) the FCC broadband dataset, (2) the Norwegian
//! HSDPA 3G mobility dataset, and (3) a synthetic hidden-Markov dataset. The
//! first two are measurement corpora we cannot redistribute, so this module
//! generates statistically matched stand-ins; the synthetic family follows
//! the paper's own construction exactly (hidden state = number of users
//! sharing a bottleneck, Gaussian throughput per state). See DESIGN.md §3
//! for the full substitution rationale.
//!
//! All generators are deterministic in `(config, seed, index)` so every
//! experiment in the repository is exactly reproducible.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three evaluation trace families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Broadband-like traces (stable, 5 s sampling, mean in 0–3 Mbps) —
    /// stand-in for the FCC "Measuring Broadband America" dataset.
    Fcc,
    /// Cellular-mobility-like traces (volatile, 1 s sampling, deep fades) —
    /// stand-in for the Telenor 3G/HSDPA dataset.
    Hsdpa,
    /// The paper's synthetic hidden-Markov model.
    Synthetic,
}

impl Dataset {
    /// All datasets in the order the paper plots them.
    pub const ALL: [Dataset; 3] = [Dataset::Fcc, Dataset::Hsdpa, Dataset::Synthetic];

    /// Label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Fcc => "FCC",
            Dataset::Hsdpa => "HSDPA",
            Dataset::Synthetic => "Synthetic",
        }
    }

    /// Generates `n` traces with this dataset's default configuration.
    pub fn generate(self, seed: u64, n: usize) -> Vec<Trace> {
        match self {
            Dataset::Fcc => FccConfig::default().generate_many(seed, n),
            Dataset::Hsdpa => HsdpaConfig::default().generate_many(seed, n),
            Dataset::Synthetic => SyntheticConfig::default().generate_many(seed, n),
        }
    }
}

/// Deterministic per-trace RNG: mixes the dataset seed with the trace index.
fn trace_rng(seed: u64, index: usize) -> StdRng {
    // SplitMix64-style mixing keeps per-index streams well separated.
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Standard-normal sample via Box–Muller (keeps us off extra dependencies).
fn randn(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Configuration of the FCC-like broadband generator.
///
/// The real dataset consists of measurement *sets* of six 5 s throughput
/// averages; the paper concatenates sets from the same server/client pair to
/// cover the video and keeps traces whose mean is 0–3 Mbps. We mirror that:
/// a per-trace base rate, a mean-reverting per-set drift, and small
/// within-set jitter (broadband links are stable on these timescales).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FccConfig {
    /// Number of concatenated measurement sets per trace.
    pub sets: usize,
    /// Data points per set (the FCC format has six).
    pub points_per_set: usize,
    /// Seconds covered by each data point (the FCC format has 5 s).
    pub point_secs: f64,
    /// Lower bound of the per-trace base rate (kbps).
    pub base_lo_kbps: f64,
    /// Upper bound of the per-trace base rate (kbps).
    pub base_hi_kbps: f64,
    /// Log-domain std-dev of the set-to-set drift.
    pub drift_sigma: f64,
    /// Mean-reversion factor of the set drift toward the base rate (0..1).
    pub drift_revert: f64,
    /// Relative within-set jitter (std-dev as a fraction of the set mean).
    pub jitter_frac: f64,
    /// Hard floor to keep downloads finite (kbps).
    pub floor_kbps: f64,
}

impl Default for FccConfig {
    fn default() -> Self {
        Self {
            sets: 13, // 13 x 30 s = 390 s, comfortably covering the 260 s video
            points_per_set: 6,
            point_secs: 5.0,
            base_lo_kbps: 300.0,
            base_hi_kbps: 2800.0,
            drift_sigma: 0.10,
            drift_revert: 0.75,
            jitter_frac: 0.06,
            floor_kbps: 50.0,
        }
    }
}

impl FccConfig {
    /// Generates trace `index` of the stream identified by `seed`.
    pub fn generate(&self, seed: u64, index: usize) -> Trace {
        let mut rng = trace_rng(seed.wrapping_add(0xFCC0), index);
        let base = rng.gen_range(self.base_lo_kbps..self.base_hi_kbps);
        let mut log_drift = 0.0_f64;
        let mut samples = Vec::with_capacity(self.sets * self.points_per_set);
        for _ in 0..self.sets {
            log_drift =
                self.drift_revert * log_drift + self.drift_sigma * randn(&mut rng);
            let set_mean = base * log_drift.exp();
            for _ in 0..self.points_per_set {
                let v = set_mean * (1.0 + self.jitter_frac * randn(&mut rng));
                samples.push(v.max(self.floor_kbps));
            }
        }
        Trace::from_samples(self.point_secs, &samples)
            .expect("generator emits positive finite samples")
    }

    /// Generates `n` traces.
    pub fn generate_many(&self, seed: u64, n: usize) -> Vec<Trace> {
        (0..n).map(|i| self.generate(seed, i)).collect()
    }
}

/// Configuration of the HSDPA-like cellular-mobility generator.
///
/// Models a device moving through radio conditions as a hidden Markov chain
/// over link states (good / fair / poor / outage-ish) with an
/// Ornstein–Uhlenbeck process in the log-throughput domain, sampled at 1 s —
/// the volatility profile the paper stresses RobustMPC with (deep fades,
/// heavy prediction-error tail).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HsdpaConfig {
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Sampling interval (the real dataset logs every 1 s).
    pub sample_secs: f64,
    /// Mean throughput of each radio state, kbps (best to worst).
    pub state_means_kbps: Vec<f64>,
    /// Per-second probability of staying in the current state.
    pub stay_prob: f64,
    /// OU mean-reversion rate toward the state mean (log domain).
    pub ou_theta: f64,
    /// OU innovation std-dev (log domain).
    pub ou_sigma: f64,
    /// Per-trace global scale is drawn log-uniformly from this range,
    /// diversifying session means like different routes/cells do.
    pub scale_lo: f64,
    /// Upper bound of the per-trace scale.
    pub scale_hi: f64,
    /// Hard floor (kbps).
    pub floor_kbps: f64,
    /// Hard ceiling (kbps).
    pub ceil_kbps: f64,
}

impl Default for HsdpaConfig {
    fn default() -> Self {
        Self {
            duration_secs: 400.0,
            sample_secs: 1.0,
            state_means_kbps: vec![3200.0, 1800.0, 800.0, 250.0],
            stay_prob: 0.93,
            ou_theta: 0.45,
            ou_sigma: 0.25,
            scale_lo: 0.7,
            scale_hi: 2.2,
            floor_kbps: 30.0,
            ceil_kbps: 8000.0,
        }
    }
}

impl HsdpaConfig {
    /// Generates trace `index` of the stream identified by `seed`.
    pub fn generate(&self, seed: u64, index: usize) -> Trace {
        let mut rng = trace_rng(seed.wrapping_add(0x35D9A), index);
        let n_states = self.state_means_kbps.len();
        assert!(n_states >= 2, "need at least two radio states");
        let scale = {
            let lo = self.scale_lo.ln();
            let hi = self.scale_hi.ln();
            rng.gen_range(lo..hi).exp()
        };
        let mut state = rng.gen_range(0..n_states);
        let mut x = (self.state_means_kbps[state] * scale).ln();
        let steps = (self.duration_secs / self.sample_secs).ceil() as usize;
        let mut samples = Vec::with_capacity(steps);
        for _ in 0..steps {
            if rng.gen::<f64>() > self.stay_prob {
                // Random walk over adjacent radio states (mobility is
                // gradual; tunnels/stops reach the worst state in steps).
                state = if state == 0 {
                    1
                } else if state == n_states - 1 {
                    n_states - 2
                } else if rng.gen::<bool>() {
                    state + 1
                } else {
                    state - 1
                };
            }
            let mu = (self.state_means_kbps[state] * scale).ln();
            x += self.ou_theta * (mu - x) + self.ou_sigma * randn(&mut rng);
            samples.push(x.exp().clamp(self.floor_kbps, self.ceil_kbps));
        }
        Trace::from_samples(self.sample_secs, &samples)
            .expect("generator emits positive finite samples")
    }

    /// Generates `n` traces.
    pub fn generate_many(&self, seed: u64, n: usize) -> Vec<Trace> {
        (0..n).map(|i| self.generate(seed, i)).collect()
    }
}

/// Configuration of the paper's synthetic hidden-Markov dataset.
///
/// "The throughput is based on some hidden state `S_t` modeling the number
/// of users sharing a bottleneck link. The actual throughput `C_t` follows a
/// Gaussian distribution with mean `m_s` and variance `sigma_s^2` given
/// `S_t = s`." We model `m_s = capacity / s` for `s = 1..=max_users` and a
/// transition matrix with a configurable self-loop probability; on leaving a
/// state the user count steps up or down by one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Sampling interval in seconds.
    pub sample_secs: f64,
    /// Bottleneck capacity in kbps.
    pub capacity_kbps: f64,
    /// Maximum number of users sharing the bottleneck (state count).
    pub max_users: usize,
    /// Per-sample probability of remaining in the current state.
    pub stay_prob: f64,
    /// `sigma_s` as a fraction of `m_s`.
    pub sigma_frac: f64,
    /// Hard floor (kbps).
    pub floor_kbps: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            duration_secs: 400.0,
            sample_secs: 1.0,
            capacity_kbps: 4500.0,
            max_users: 4,
            stay_prob: 0.97,
            sigma_frac: 0.12,
            floor_kbps: 15.0,
        }
    }
}

impl SyntheticConfig {
    /// Mean throughput of state `s` (1-based user count), kbps.
    pub fn state_mean_kbps(&self, users: usize) -> f64 {
        self.capacity_kbps / users as f64
    }

    /// Generates trace `index` of the stream identified by `seed`.
    pub fn generate(&self, seed: u64, index: usize) -> Trace {
        assert!(self.max_users >= 1, "need at least one user state");
        let mut rng = trace_rng(seed.wrapping_add(0x5E77), index);
        let mut users = rng.gen_range(1..=self.max_users);
        let steps = (self.duration_secs / self.sample_secs).ceil() as usize;
        let mut samples = Vec::with_capacity(steps);
        for _ in 0..steps {
            if self.max_users > 1 && rng.gen::<f64>() > self.stay_prob {
                users = if users == 1 {
                    2
                } else if users == self.max_users {
                    self.max_users - 1
                } else if rng.gen::<bool>() {
                    users + 1
                } else {
                    users - 1
                };
            }
            let m = self.state_mean_kbps(users);
            let v = m * (1.0 + self.sigma_frac * randn(&mut rng));
            samples.push(v.max(self.floor_kbps));
        }
        Trace::from_samples(self.sample_secs, &samples)
            .expect("generator emits positive finite samples")
    }

    /// Generates `n` traces.
    pub fn generate_many(&self, seed: u64, n: usize) -> Vec<Trace> {
        (0..n).map(|i| self.generate(seed, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn generators_are_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(42, 3);
            let b = ds.generate(42, 3);
            assert_eq!(a, b, "{} not deterministic", ds.label());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Fcc.generate(1, 1);
        let b = Dataset::Fcc.generate(2, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let t = Dataset::Hsdpa.generate(7, 2);
        assert_ne!(t[0], t[1]);
    }

    #[test]
    fn traces_cover_the_video() {
        for ds in Dataset::ALL {
            for t in ds.generate(0, 5) {
                assert!(
                    t.cycle_secs() >= 300.0,
                    "{} trace too short: {}",
                    ds.label(),
                    t.cycle_secs()
                );
            }
        }
    }

    #[test]
    fn fcc_means_within_paper_filter() {
        // The paper keeps FCC traces with mean throughput in 0–3 Mbps.
        let traces = Dataset::Fcc.generate(11, 50);
        for t in &traces {
            assert!(t.mean_kbps() < 3800.0, "mean {}", t.mean_kbps());
            assert!(t.mean_kbps() > 100.0, "mean {}", t.mean_kbps());
        }
    }

    #[test]
    fn fcc_is_the_most_stable_hsdpa_the_most_variable() {
        // Figure 7's qualitative ordering: coefficient of variation
        // FCC < Synthetic < HSDPA on average.
        let cov = |ds: Dataset| {
            let traces = ds.generate(5, 40);
            let covs: Vec<f64> = traces.iter().map(|t| t.std_kbps() / t.mean_kbps()).collect();
            Summary::of(&covs).unwrap().mean
        };
        let (fcc, hsdpa, synth) = (cov(Dataset::Fcc), cov(Dataset::Hsdpa), cov(Dataset::Synthetic));
        assert!(fcc < synth, "fcc {fcc} vs synth {synth}");
        assert!(synth < hsdpa, "synth {synth} vs hsdpa {hsdpa}");
    }

    #[test]
    fn hsdpa_has_deep_fades() {
        let traces = Dataset::Hsdpa.generate(3, 30);
        let with_fade = traces
            .iter()
            .filter(|t| t.min_kbps() < 0.25 * t.mean_kbps())
            .count();
        assert!(
            with_fade * 2 > traces.len(),
            "only {with_fade}/{} traces had deep fades",
            traces.len()
        );
    }

    #[test]
    fn synthetic_state_means_follow_capacity_sharing() {
        let c = SyntheticConfig::default();
        assert_eq!(c.state_mean_kbps(1), 4500.0);
        assert_eq!(c.state_mean_kbps(3), 1500.0);
    }

    #[test]
    fn synthetic_single_state_never_transitions() {
        let c = SyntheticConfig {
            max_users: 1,
            sigma_frac: 0.0,
            ..SyntheticConfig::default()
        };
        let t = c.generate(9, 0);
        assert!((t.mean_kbps() - 4500.0).abs() < 1e-9);
        assert!(t.std_kbps() < 1e-9);
    }

    #[test]
    fn samples_respect_floors_and_ceilings() {
        let h = HsdpaConfig::default();
        for t in h.generate_many(13, 10) {
            assert!(t.min_kbps() >= h.floor_kbps);
            assert!(t.max_kbps() <= h.ceil_kbps);
        }
    }

    #[test]
    fn fcc_sampling_grid_is_5s() {
        let t = FccConfig::default().generate(1, 0);
        assert_eq!(t.num_segments(), 13 * 6);
        assert_eq!(t.segment(0).0, 5.0);
    }

    #[test]
    fn hsdpa_sampling_grid_is_1s() {
        let t = HsdpaConfig::default().generate(1, 0);
        assert_eq!(t.segment(0).0, 1.0);
        assert_eq!(t.num_segments(), 400);
    }
}
