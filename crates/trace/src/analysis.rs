//! Trace analysis: the statistical properties that determine how
//! predictable a throughput process is.
//!
//! The paper's MPC design rests on one empirical claim — "network
//! conditions are reasonably stable on short timescales and usually do not
//! change drastically during a short horizon (tens of seconds)" (Section
//! 4.1, citing Zhang & Duffield's constancy study). This module provides
//! the tools to check that claim on any [`Trace`]: autocorrelation,
//! horizon-change profiles, and rolling stability statistics. The
//! `trace_analysis` example applies them to the three datasets.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Samples a trace on a uniform grid (mean throughput per `dt` bucket) —
/// the first step of every analysis below.
pub fn resample(trace: &Trace, dt: f64, duration_secs: f64) -> Vec<f64> {
    assert!(dt > 0.0 && duration_secs > 0.0, "invalid grid");
    let n = (duration_secs / dt).floor() as usize;
    (0..n)
        .map(|i| {
            let t0 = i as f64 * dt;
            trace.integrate_kbits(t0, t0 + dt) / dt
        })
        .collect()
}

/// Sample autocorrelation of a series at integer `lag` (biased estimator,
/// as standard). Returns `None` when the series is too short or constant.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    if series.len() <= lag + 1 {
        return None;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var <= 1e-12 {
        return None;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    Some(cov / var)
}

/// The throughput-constancy profile underpinning MPC's short-horizon bet:
/// for each horizon `h` (seconds), the mean relative difference between
/// the average throughput of `[t, t+h]` and that of the preceding window
/// `[t-h, t]`, averaged over the trace. Small values mean "the near future
/// looks like the recent past".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstancyProfile {
    /// The horizons probed, seconds.
    pub horizons_secs: Vec<f64>,
    /// Mean relative change per horizon (same order).
    pub mean_rel_change: Vec<f64>,
}

/// Computes the constancy profile of a trace over `horizons_secs`.
pub fn constancy_profile(trace: &Trace, horizons_secs: &[f64]) -> ConstancyProfile {
    let total = trace.cycle_secs();
    let mut out = Vec::with_capacity(horizons_secs.len());
    for &h in horizons_secs {
        assert!(h > 0.0, "horizon must be positive");
        let mut acc = 0.0;
        let mut count = 0usize;
        let step = (h / 2.0).max(1.0);
        let mut t = h;
        while t + h <= total {
            let past = trace.integrate_kbits(t - h, t) / h;
            let future = trace.integrate_kbits(t, t + h) / h;
            if past > 0.0 {
                acc += (future - past).abs() / past;
                count += 1;
            }
            t += step;
        }
        out.push(if count == 0 { f64::NAN } else { acc / count as f64 });
    }
    ConstancyProfile {
        horizons_secs: horizons_secs.to_vec(),
        mean_rel_change: out,
    }
}

/// Rolling coefficient of variation: std/mean over windows of `window_secs`,
/// averaged across the trace — a single-number stability score (lower =
/// steadier on that timescale).
pub fn rolling_cov(trace: &Trace, window_secs: f64, dt: f64) -> f64 {
    assert!(window_secs > dt && dt > 0.0);
    let series = resample(trace, dt, trace.cycle_secs());
    let w = (window_secs / dt) as usize;
    if series.len() < w || w < 2 {
        return f64::NAN;
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for chunk in series.windows(w).step_by(w / 2) {
        let mean = chunk.iter().sum::<f64>() / w as f64;
        if mean <= 0.0 {
            continue;
        }
        let var = chunk.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / w as f64;
        acc += var.sqrt() / mean;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;

    #[test]
    fn resample_recovers_piecewise_levels() {
        let t = Trace::new(vec![(10.0, 1000.0), (10.0, 2000.0)]).unwrap();
        let s = resample(&t, 5.0, 20.0);
        assert_eq!(s, vec![1000.0, 1000.0, 2000.0, 2000.0]);
        // Straddling bucket averages.
        let s2 = resample(&t, 8.0, 16.0);
        assert!((s2[0] - 1000.0).abs() < 1e-9);
        assert!((s2[1] - (2.0 * 1000.0 + 6.0 * 2000.0) / 8.0).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_of_constant_is_undefined() {
        assert_eq!(autocorrelation(&[5.0; 10], 1), None);
        assert_eq!(autocorrelation(&[1.0, 2.0], 3), None);
    }

    #[test]
    fn autocorrelation_detects_persistence_and_alternation() {
        // Slowly varying series: high positive lag-1 autocorrelation.
        let smooth: Vec<f64> = (0..100).map(|i| (i as f64 / 15.0).sin()).collect();
        assert!(autocorrelation(&smooth, 1).unwrap() > 0.9);
        // Alternating series: strongly negative.
        let alt: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&alt, 1).unwrap() < -0.9);
        // Lag 0 is exactly 1.
        assert!((autocorrelation(&smooth, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constancy_profile_flat_trace_is_zero() {
        let t = Trace::constant(1500.0, 300.0).unwrap();
        let p = constancy_profile(&t, &[5.0, 20.0]);
        for &c in &p.mean_rel_change {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn constancy_grows_with_horizon_on_volatile_traces() {
        // For the cellular family, longer horizons are (weakly) harder to
        // predict from the past — the effect behind Figure 12b's flattening.
        let traces = Dataset::Hsdpa.generate(3, 10);
        let mut short_sum = 0.0;
        let mut long_sum = 0.0;
        for t in &traces {
            let p = constancy_profile(t, &[4.0, 40.0]);
            short_sum += p.mean_rel_change[0];
            long_sum += p.mean_rel_change[1];
        }
        assert!(
            long_sum > short_sum * 0.8,
            "long-horizon change {long_sum} unexpectedly below short {short_sum}"
        );
        assert!(short_sum > 0.0);
    }

    #[test]
    fn rolling_cov_orders_the_datasets() {
        // The single-number stability score reproduces Figure 7's ordering.
        let score = |ds: Dataset| {
            let traces = ds.generate(17, 10);
            traces.iter().map(|t| rolling_cov(t, 20.0, 1.0)).sum::<f64>() / traces.len() as f64
        };
        let fcc = score(Dataset::Fcc);
        let hsdpa = score(Dataset::Hsdpa);
        assert!(fcc < hsdpa, "fcc {fcc} vs hsdpa {hsdpa}");
    }

    #[test]
    fn mpc_premise_holds_on_broadband() {
        // The Section 4.1 premise, quantified: on FCC-like traces the next
        // 20 s differ from the previous 20 s by a small relative amount.
        let traces = Dataset::Fcc.generate(23, 10);
        let mean_change: f64 = traces
            .iter()
            .map(|t| constancy_profile(t, &[20.0]).mean_rel_change[0])
            .sum::<f64>()
            / traces.len() as f64;
        assert!(
            mean_change < 0.25,
            "broadband 20s constancy broke: {mean_change}"
        );
    }
}
