//! Trace persistence: JSON for round-tripping, plain text for importing real
//! measurement exports (one `duration_secs throughput_kbps` pair per line,
//! the format of the public HSDPA logs and trivially produced from FCC CSV
//! exports).

use crate::trace::{Trace, TraceError};
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors loading or saving traces.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem or stream error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// A text line could not be parsed as `duration kbps`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Parsed values violated trace invariants.
    Trace(TraceError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse '{content}' as 'duration kbps'")
            }
            IoError::Trace(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

impl From<TraceError> for IoError {
    fn from(e: TraceError) -> Self {
        IoError::Trace(e)
    }
}

/// Serializes a batch of traces to pretty JSON.
pub fn to_json(traces: &[Trace]) -> Result<String, IoError> {
    Ok(serde_json::to_string_pretty(traces)?)
}

/// Deserializes a batch of traces from JSON.
pub fn from_json(json: &str) -> Result<Vec<Trace>, IoError> {
    Ok(serde_json::from_str(json)?)
}

/// Saves traces as JSON to a file.
pub fn save_json(traces: &[Trace], path: &Path) -> Result<(), IoError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(traces)?.as_bytes())?;
    Ok(())
}

/// Loads traces from a JSON file.
pub fn load_json(path: &Path) -> Result<Vec<Trace>, IoError> {
    from_json(&std::fs::read_to_string(path)?)
}

/// Parses a plain-text trace: one `duration_secs throughput_kbps` pair per
/// line; blank lines and `#` comments ignored.
pub fn parse_text(reader: impl BufRead) -> Result<Trace, IoError> {
    let mut segments = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let (d, c) = match (parts.next(), parts.next(), parts.next()) {
            (Some(d), Some(c), None) => (d.parse::<f64>(), c.parse::<f64>()),
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: content.to_string(),
                })
            }
        };
        match (d, c) {
            (Ok(d), Ok(c)) => segments.push((d, c)),
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: content.to_string(),
                })
            }
        }
    }
    Ok(Trace::new(segments)?)
}

/// Loads a plain-text trace file (see [`parse_text`]).
pub fn load_text(path: &Path) -> Result<Trace, IoError> {
    parse_text(std::io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn json_round_trip() {
        let traces = vec![
            Trace::constant(1000.0, 10.0).unwrap(),
            Trace::new(vec![(1.0, 100.0), (2.0, 200.0)]).unwrap(),
        ];
        let json = to_json(&traces).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(traces, back);
    }

    #[test]
    fn text_parse_with_comments_and_blanks() {
        let input = "# header\n5 1000\n\n5 2000  # inline comment\n  5   500\n";
        let t = parse_text(Cursor::new(input)).unwrap();
        assert_eq!(t.num_segments(), 3);
        assert_eq!(t.kbps_at(7.0), 2000.0);
    }

    #[test]
    fn text_parse_rejects_garbage() {
        let err = parse_text(Cursor::new("5 1000\nnot numbers\n")).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn text_parse_rejects_extra_columns() {
        assert!(matches!(
            parse_text(Cursor::new("5 1000 7\n")),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn text_parse_rejects_invalid_trace() {
        assert!(matches!(
            parse_text(Cursor::new("# only comments\n")),
            Err(IoError::Trace(TraceError::Empty))
        ));
        assert!(matches!(
            parse_text(Cursor::new("5 -3\n")),
            Err(IoError::Trace(TraceError::BadThroughput))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("abr_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.json");
        let traces = vec![Trace::constant(123.0, 4.0).unwrap()];
        save_json(&traces, &path).unwrap();
        assert_eq!(load_json(&path).unwrap(), traces);
        std::fs::remove_file(&path).unwrap();
    }
}
