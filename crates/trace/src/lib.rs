//! Throughput-trace substrate for the `mpc-dash` workspace.
//!
//! The evaluation in Yin et al. (SIGCOMM 2015) drives every experiment from a
//! network-throughput trace `C_t` (Section 7.1.1). This crate provides:
//!
//! * [`Trace`] — a piecewise-constant throughput signal with the integration
//!   primitives the streaming model needs (`C_k` is the *average* throughput
//!   over a download interval, Eq. (2));
//! * [`datasets`] — seeded generators for the three trace families the paper
//!   evaluates on. The original FCC broadband and Norwegian HSDPA datasets
//!   are not redistributable, so we generate statistically matched stand-ins
//!   (see DESIGN.md §3 for the substitution argument); the synthetic
//!   hidden-Markov dataset follows the paper's own description exactly;
//! * [`stats`] — CDFs, percentiles and summary statistics used to reproduce
//!   Figure 7;
//! * [`io`] — JSON (de)serialization plus a plain-text loader so users can
//!   feed in real measurement exports.
//!
//! Time is in seconds, throughput in kbps, data volume in kilobits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod datasets;
pub mod io;
pub mod stats;
mod trace;

pub use datasets::{Dataset, FccConfig, HsdpaConfig, SyntheticConfig};
pub use trace::{Trace, TraceCursor, TraceError, TraceScanCache};
