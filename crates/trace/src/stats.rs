//! Small statistics toolkit: summary stats, percentiles and empirical CDFs.
//!
//! These are the primitives behind every CDF plot in the paper's evaluation
//! (Figures 7–10) and the median-improvement headline numbers.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            max: sorted[n - 1],
        })
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice,
/// `p` in `[0, 100]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Convenience: percentile of an unsorted sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    percentile_sorted(&sorted, p)
}

/// Median of an unsorted sample. Panics on empty input.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// An empirical CDF: sorted sample values paired with cumulative probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Ascending sample values.
    pub values: Vec<f64>,
    /// `probs[i]` = fraction of samples `<= values[i]` (ends at 1.0).
    pub probs: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF of a sample. Returns `None` if empty.
    pub fn of(samples: &[f64]) -> Option<Cdf> {
        if samples.is_empty() {
            return None;
        }
        let mut values = samples.to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let n = values.len() as f64;
        let probs = (1..=values.len()).map(|i| i as f64 / n).collect();
        Some(Cdf { values, probs })
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn prob_at(&self, x: f64) -> f64 {
        let idx = self.values.partition_point(|&v| v <= x);
        if idx == 0 {
            0.0
        } else {
            self.probs[idx - 1]
        }
    }

    /// Inverse CDF at probability `p in (0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "quantile prob {p} out of range");
        let idx = self.probs.partition_point(|&q| q < p);
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Downsamples the CDF onto `n` evenly spaced probability points — the
    /// series format the harness prints for plotting.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two points");
        (0..n)
            .map(|i| {
                let p = (i as f64 + 1.0) / n as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12); // classic example with sigma = 2
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert!((percentile(&v, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
    }

    #[test]
    fn cdf_prob_and_quantile() {
        let c = Cdf::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(c.prob_at(0.5), 0.0);
        assert_eq!(c.prob_at(1.0), 0.25);
        assert_eq!(c.prob_at(2.5), 0.5);
        assert_eq!(c.prob_at(10.0), 1.0);
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.26), 2.0);
    }

    #[test]
    fn cdf_handles_duplicates() {
        let c = Cdf::of(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(c.prob_at(5.0), 1.0);
        assert_eq!(c.prob_at(4.999), 0.0);
        assert_eq!(c.quantile(0.5), 5.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let samples: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let c = Cdf::of(&samples).unwrap();
        let s = c.series(20);
        assert_eq!(s.len(), 20);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
