//! Proves the batched decision kernel is allocation-free in steady state:
//! after one warm-up batch has sized the columns and scratch (flat indices,
//! argsort order, output levels), further `decide_batch` calls on a reused
//! [`DecisionBatch`] perform zero heap allocations — the property that lets
//! the harness grid and the bulk decision endpoint run one batch per tick
//! without allocator traffic.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator cannot interfere with any other test.

use abr_fastmpc::{DecisionBatch, FastMpcTable, TableConfig};
use abr_video::{envivio_video, LevelIdx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global, so measured sections from concurrently
/// running tests would pollute each other; this lock serializes them.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// Deterministic probe state for slot `i` of round `round` — varied enough
/// to touch many table rows, cheap enough to compute with no allocation.
fn probe(round: usize, i: usize) -> (usize, f64, LevelIdx, f64) {
    let chunk = (round * 7 + i) % 60;
    let buffer = ((i * 13 + round * 5) % 31) as f64;
    let prev = LevelIdx((i + round) % 5);
    let thr = 150.0 + ((i * 37 + round * 101) % 9000) as f64;
    (chunk, buffer, prev, thr)
}

#[test]
fn steady_state_batches_do_not_allocate() {
    let video = envivio_video();
    let table = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(25, 30.0));
    let mut batch = DecisionBatch::new();
    const BATCH: usize = 256;

    // Warm-up: size every column and the sort scratch at the working batch
    // size.
    batch.clear();
    for i in 0..BATCH {
        let (chunk, buffer, prev, thr) = probe(0, i);
        batch.push(chunk, buffer, prev, thr);
    }
    table.decide_batch(&mut batch);

    let (allocs, decided) = allocations(|| {
        let mut decided = 0usize;
        for round in 1..=20 {
            batch.clear();
            for i in 0..BATCH {
                let (chunk, buffer, prev, thr) = probe(round, i);
                batch.push(chunk, buffer, prev, thr);
            }
            table.decide_batch(&mut batch);
            for i in 0..batch.len() {
                decided += usize::from(batch.level(i).get() < 5);
            }
        }
        decided
    });
    assert_eq!(decided, 20 * BATCH, "every probe must yield a valid level");
    assert_eq!(allocs, 0, "steady-state batches must not allocate");
}
