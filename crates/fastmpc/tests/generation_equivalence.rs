//! Property test: every generation strategy — parallel rows, run-aware
//! divide-and-conquer — produces a table byte-identical to the sequential
//! reference, across randomized ladders, bin resolutions (including the
//! degenerate 1-bin case), horizons, and VBR size profiles.

use abr_fastmpc::{BinSpec, FastMpcTable, GenMode, TableConfig};
use abr_video::{Ladder, QoeWeights, VideoBuilder};
use proptest::prelude::*;

/// A strictly increasing bitrate ladder built from a base rate and
/// multiplicative steps.
fn ladder_strategy() -> impl Strategy<Value = Ladder> {
    (
        100.0f64..600.0,
        proptest::collection::vec(1.2f64..2.2, 1..4),
    )
        .prop_map(|(base, steps)| {
            let mut levels = vec![base];
            for s in steps {
                levels.push(levels.last().unwrap() * s);
            }
            Ladder::new(levels).expect("constructed strictly increasing")
        })
}

proptest! {
    // Each case generates three full tables (plus, in debug builds, the
    // run-aware path's internal re-derivation), so keep the case count low
    // and the dimensions small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential, parallel and run-aware enumeration agree byte for byte.
    #[test]
    fn all_modes_agree(
        ladder in ladder_strategy(),
        buffer_bins in 1usize..8,
        throughput_bins in 1usize..8,
        horizon in 1usize..5,
        vbr_swing in 0.0f64..0.4,
    ) {
        let video = VideoBuilder::new(ladder)
            .chunks(10)
            .chunk_secs(4.0)
            .vbr(|k| 1.0 + vbr_swing * if k % 2 == 0 { 1.0 } else { -1.0 });
        let cfg = TableConfig {
            buffer_bins: BinSpec::linear(buffer_bins, 0.0, 30.0),
            throughput_bins: BinSpec::log(throughput_bins, 100.0, 10_000.0),
            horizon,
            horizon_slices: 1,
            weights: QoeWeights::balanced(),
        };
        let seq = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Sequential);
        let par = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Parallel);
        let ra = FastMpcTable::generate_with(&video, 30.0, cfg, GenMode::RunAware);
        prop_assert_eq!(&seq, &par, "parallel diverged from sequential");
        prop_assert_eq!(&seq, &ra, "run-aware diverged from sequential");
        // The serialized artifacts must match too — both JSON and binary.
        prop_assert_eq!(seq.to_json(), ra.to_json());
        prop_assert_eq!(seq.to_bytes(), ra.to_bytes());
    }

    /// The binary codec round-trips every randomly generated table.
    #[test]
    fn binary_codec_round_trips(
        ladder in ladder_strategy(),
        bins in 1usize..8,
        horizon in 1usize..5,
    ) {
        let video = VideoBuilder::new(ladder).chunks(10).chunk_secs(4.0).cbr();
        let cfg = TableConfig {
            buffer_bins: BinSpec::linear(bins, 0.0, 30.0),
            throughput_bins: BinSpec::log(bins, 100.0, 10_000.0),
            horizon,
            horizon_slices: 1,
            weights: QoeWeights::balanced(),
        };
        let t = FastMpcTable::generate_with(&video, 30.0, cfg, GenMode::RunAware);
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.binary_size_bytes());
        let back = FastMpcTable::from_bytes(&bytes).expect("round trip decodes");
        prop_assert_eq!(t, back);
    }
}
