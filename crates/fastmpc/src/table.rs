//! Offline table generation (Figure 5's enumeration) and size accounting
//! (Table 1).

use crate::bins::BinSpec;
use crate::rle::Rle;
use abr_core::mpc::{confirm_first_with, optimize_first_with, HorizonScratch};
use abr_video::{LevelIdx, QoeWeights, Video};
use serde::{Deserialize, Serialize};

/// Strategy for the offline enumeration in [`FastMpcTable::generate_with`].
///
/// Every mode produces **byte-identical** tables — they differ only in how
/// much work proves each scenario's optimum. [`FastMpcTable::generate`]
/// uses [`GenMode::RunAware`], the fastest; [`GenMode::Sequential`] is the
/// trusted reference the others are tested (and debug-asserted) against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenMode {
    /// The reference: one cold solve per scenario, single-threaded, in row
    /// order. This is the seed implementation's behavior.
    Sequential,
    /// Cold solve per scenario, but (buffer, previous-level) rows fan out
    /// across threads via `abr-par` (thread count: `--threads` /
    /// `ABR_THREADS` / all cores).
    Parallel,
    /// Parallel rows plus run-aware enumeration along the throughput axis:
    /// divide-and-conquer probes find candidate runs of equal optimal
    /// plans, and interior scenarios are verified with hint-seeded solves
    /// (`confirm_first_with`) that are exact regardless of hint quality —
    /// monotonicity is exploited, never assumed.
    #[default]
    RunAware,
}

/// Serde default for [`TableConfig::horizon_slices`]: one slice (VOD).
fn default_horizon_slices() -> usize {
    1
}

/// True when a slice count is the VOD default (elided from JSON so VOD
/// table artifacts keep their pre-live byte layout).
fn is_one(v: &usize) -> bool {
    *v == 1
}

/// Configuration of the FastMPC table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableConfig {
    /// Binning of the buffer dimension (linear over `[0, B_max]`).
    pub buffer_bins: BinSpec,
    /// Binning of the throughput-prediction dimension (logarithmic).
    pub throughput_bins: BinSpec,
    /// MPC look-ahead horizon.
    pub horizon: usize,
    /// Number of truncated-horizon slices for live sessions: slice `s`
    /// stores the optimum for an effective horizon of `horizon - s`
    /// chunks, so a player at the live edge (where fewer chunks exist yet)
    /// looks up the slice matching its availability-truncated horizon.
    /// `1` — the default, elided from JSON — is the VOD table: the full
    /// horizon only. Must satisfy `1 <= horizon_slices <= horizon`.
    #[serde(default = "default_horizon_slices", skip_serializing_if = "is_one")]
    pub horizon_slices: usize,
    /// QoE weights the offline solves optimize.
    pub weights: QoeWeights,
}

impl TableConfig {
    /// The paper's configuration: 100 buffer bins over `[0, 30 s]`,
    /// 100 throughput bins, horizon 5 — 100 × |R| × 100 rows (50,000 for
    /// the 5-level Envivio ladder, matching Figure 5).
    pub fn paper_default() -> Self {
        Self::with_levels(100, 30.0)
    }

    /// A table with `levels` bins per continuous dimension (the Figure 12a
    /// / Table 1 sweep parameter) for a player buffer of `buffer_max_secs`.
    pub fn with_levels(levels: usize, buffer_max_secs: f64) -> Self {
        Self {
            buffer_bins: BinSpec::linear(levels, 0.0, buffer_max_secs),
            throughput_bins: BinSpec::log(levels, 100.0, 10_000.0),
            horizon: 5,
            horizon_slices: 1,
            weights: QoeWeights::balanced(),
        }
    }

    /// Grows the table with truncated-horizon slices for live lookups:
    /// every effective horizon in `[horizon - slices + 1, horizon]` gets
    /// its own enumerated slice.
    pub fn live_slices(mut self, slices: usize) -> Self {
        assert!(
            (1..=self.horizon).contains(&slices),
            "need 1 <= slices <= horizon"
        );
        self.horizon_slices = slices;
        self
    }
}

/// A struct-of-arrays batch of decision probes for
/// [`FastMpcTable::decide_batch`]: the live state of many sessions stepped
/// in lockstep, one element per session in each parallel column.
///
/// The batch owns its columns and scratch, so a long-lived caller (the
/// harness grid, the bulk decision endpoint) reuses one `DecisionBatch`
/// across ticks and stays off the allocator in steady state (proven by
/// `tests/no_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub struct DecisionBatch {
    /// Chunk index `k` per probe — unused by the table (the steady-state
    /// table is chunk-independent) but carried so non-tabular batch
    /// consumers see the same columnar view.
    pub(crate) chunk_index: Vec<u32>,
    /// Buffer occupancy `B_k` per probe, seconds.
    pub(crate) buffer_secs: Vec<f64>,
    /// Previous level `R_{k-1}` per probe.
    pub(crate) prev_level: Vec<u8>,
    /// Predicted throughput per probe, kbps.
    pub(crate) throughput_kbps: Vec<f64>,
    /// Output column: the decided level per probe.
    pub(crate) levels: Vec<u8>,
    /// Scratch: flattened table index per probe.
    pub(crate) flat: Vec<u32>,
    /// Scratch: probe visit order (ascending flat index).
    pub(crate) order: Vec<u32>,
}

impl DecisionBatch {
    /// An empty batch; columns grow on first fill and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every column, retaining capacity.
    pub fn clear(&mut self) {
        self.chunk_index.clear();
        self.buffer_secs.clear();
        self.prev_level.clear();
        self.throughput_kbps.clear();
        self.levels.clear();
        self.flat.clear();
        self.order.clear();
    }

    /// Appends one probe. `prev` is the session's previous level (callers
    /// apply their own first-chunk fallback, exactly as the scalar path
    /// does).
    pub fn push(&mut self, chunk_index: usize, buffer_secs: f64, prev: LevelIdx, throughput_kbps: f64) {
        self.chunk_index.push(chunk_index as u32);
        self.buffer_secs.push(buffer_secs);
        self.prev_level.push(prev.get() as u8);
        self.throughput_kbps.push(throughput_kbps);
    }

    /// Number of probes in the batch.
    pub fn len(&self) -> usize {
        self.buffer_secs.len()
    }

    /// True when the batch holds no probes.
    pub fn is_empty(&self) -> bool {
        self.buffer_secs.is_empty()
    }

    /// The decided level for probe `i` (valid after
    /// [`FastMpcTable::decide_batch`]).
    pub fn level(&self, i: usize) -> LevelIdx {
        LevelIdx(self.levels[i] as usize)
    }
}

/// The enumerated decision table: optimal bitrate level for every
/// (buffer bin, previous level, throughput bin) scenario, stored run-length
/// encoded.
///
/// ```
/// use abr_fastmpc::{FastMpcTable, TableConfig};
/// use abr_video::{envivio_video, LevelIdx};
///
/// let video = envivio_video();
/// // Offline: enumerate and solve (small table for the example).
/// let table = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(15, 30.0));
/// // Online: a pure lookup.
/// let level = table.lookup(12.0, LevelIdx(2), 2200.0);
/// assert!(level.get() < 5);
/// assert!(table.rle_size_bytes() <= table.full_size_bytes() * 5);
/// ```
///
/// Row layout (row-major): `buffer` is the slowest dimension, then
/// `previous level`, then `throughput`. Throughput is innermost because the
/// optimal decision is monotone-ish in predicted throughput, producing long
/// runs for the RLE to exploit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastMpcTable {
    pub(crate) cfg: TableConfig,
    pub(crate) num_levels: usize,
    pub(crate) buffer_max_secs: f64,
    pub(crate) decisions: Rle,
}

/// Fills one (buffer, previous-level) row by cold-solving every throughput
/// bin in order — the reference enumeration.
#[allow(clippy::too_many_arguments)]
fn row_sequential(
    scratch: &mut HorizonScratch,
    video: &Video,
    buffer_max_secs: f64,
    cfg: &TableConfig,
    horizon: usize,
    buffer: f64,
    prev: usize,
    row: &mut [u8],
) {
    for (c, slot) in row.iter_mut().enumerate() {
        let throughput = cfg.throughput_bins.centroid(c);
        let (first, _) = optimize_first_with(
            scratch,
            video,
            0,
            horizon,
            buffer,
            buffer_max_secs,
            Some(LevelIdx(prev)),
            throughput,
            &cfg.weights,
        );
        *slot = first.get() as u8;
    }
}

/// Fills one row run-aware: divide-and-conquer over the throughput axis.
///
/// Probe bins get a full solve; when an interval's two endpoint solves
/// produce the *same full plan*, the interval is a candidate run and every
/// interior bin is settled with a hint-seeded solve instead of a cold one.
/// Hint-seeded solves are exact whatever the hint (see
/// [`abr_core::mpc::confirm_first_with`]), so a non-monotone wiggle inside
/// a candidate run — they exist, roughly 1 bin in 20 at the paper's
/// resolution — still comes out correct, just less cheaply. The payoff is
/// that a hint equal to the true optimum makes the proof of optimality
/// nearly free, and inside a run that is the common case.
#[allow(clippy::too_many_arguments)]
fn row_run_aware(
    scratch: &mut HorizonScratch,
    video: &Video,
    buffer_max_secs: f64,
    cfg: &TableConfig,
    horizon: usize,
    buffer: f64,
    prev: usize,
    row: &mut [u8],
) {
    let n = cfg.throughput_bins.count;
    let prev_level = Some(LevelIdx(prev));
    let solve = |scratch: &mut HorizonScratch, c: usize, hint: Option<&[LevelIdx]>| {
        let throughput = cfg.throughput_bins.centroid(c);
        let first = match hint {
            Some(h) => {
                confirm_first_with(
                    scratch,
                    video,
                    0,
                    horizon,
                    buffer,
                    buffer_max_secs,
                    prev_level,
                    throughput,
                    &cfg.weights,
                    h,
                )
                .0
            }
            None => {
                optimize_first_with(
                    scratch,
                    video,
                    0,
                    horizon,
                    buffer,
                    buffer_max_secs,
                    prev_level,
                    throughput,
                    &cfg.weights,
                )
                .0
            }
        };
        (first.get() as u8, scratch.plan().to_vec())
    };
    if n == 1 {
        row[0] = solve(scratch, 0, None).0;
    } else {
        let (d0, p0) = solve(scratch, 0, None);
        row[0] = d0;
        let (dn, pn) = solve(scratch, n - 1, Some(&p0));
        row[n - 1] = dn;
        // Explicit interval stack; each interval carries its endpoint plans
        // so equal-plan intervals switch to hint-seeded solves.
        let mut stack: Vec<(usize, usize, Vec<LevelIdx>, Vec<LevelIdx>)> =
            vec![(0, n - 1, p0, pn)];
        while let Some((lo, hi, plan_lo, plan_hi)) = stack.pop() {
            if hi - lo <= 1 {
                continue;
            }
            if plan_lo == plan_hi {
                for c in lo + 1..hi {
                    row[c] = solve(scratch, c, Some(&plan_lo)).0;
                }
            } else {
                let mid = lo + (hi - lo) / 2;
                let (dm, pm) = solve(scratch, mid, Some(&plan_lo));
                row[mid] = dm;
                stack.push((lo, mid, plan_lo, pm.clone()));
                stack.push((mid, hi, pm, plan_hi));
            }
        }
    }
    // In debug builds, re-derive the row with the reference enumeration —
    // the run-aware path must be equivalent bin for bin.
    #[cfg(debug_assertions)]
    {
        let mut reference = vec![0u8; n];
        row_sequential(
            scratch,
            video,
            buffer_max_secs,
            cfg,
            horizon,
            buffer,
            prev,
            &mut reference,
        );
        debug_assert_eq!(
            row, &reference[..],
            "run-aware row diverged from the sequential reference"
        );
    }
}

impl FastMpcTable {
    /// Runs the offline enumeration: one exact MPC solve per scenario
    /// centroid (the role CPLEX plays in the paper), in the fastest mode
    /// ([`GenMode::RunAware`]: parallel rows + run-aware throughput axis).
    ///
    /// `video` supplies the ladder and chunk sizes; the table represents the
    /// steady state, so solves start at chunk 0 with the full horizon.
    pub fn generate(video: &Video, buffer_max_secs: f64, cfg: TableConfig) -> Self {
        Self::generate_with(video, buffer_max_secs, cfg, GenMode::default())
    }

    /// [`FastMpcTable::generate`] with an explicit enumeration strategy.
    /// All modes produce byte-identical tables; see [`GenMode`].
    pub fn generate_with(
        video: &Video,
        buffer_max_secs: f64,
        cfg: TableConfig,
        mode: GenMode,
    ) -> Self {
        assert!(
            video.num_chunks() >= cfg.horizon,
            "video shorter than the MPC horizon"
        );
        let num_levels = video.ladder().len();
        assert!(num_levels <= u8::MAX as usize, "ladder too large for u8 storage");
        assert!(
            (1..=cfg.horizon).contains(&cfg.horizon_slices),
            "need 1 <= horizon_slices <= horizon"
        );
        let slice_rows = cfg.buffer_bins.count * num_levels;
        let n_rows = cfg.horizon_slices * slice_rows;
        let row_len = cfg.throughput_bins.count;

        let fill = match mode {
            GenMode::Sequential | GenMode::Parallel => row_sequential,
            GenMode::RunAware => row_run_aware,
        };
        // Slice-major: slice `s` (effective horizon `horizon - s`) is a
        // contiguous block of rows, so slice 0 is byte-identical to the
        // single-slice (VOD) table over the same bins.
        let make_row = |r: usize| -> Vec<u8> {
            let s = r / slice_rows;
            let b = (r % slice_rows) / num_levels;
            let prev = r % num_levels;
            let buffer = cfg.buffer_bins.centroid(b).min(buffer_max_secs);
            let mut scratch = HorizonScratch::new();
            let mut row = vec![0u8; row_len];
            fill(
                &mut scratch,
                video,
                buffer_max_secs,
                &cfg,
                cfg.horizon - s,
                buffer,
                prev,
                &mut row,
            );
            row
        };
        let rows: Vec<Vec<u8>> = match mode {
            GenMode::Sequential => (0..n_rows).map(make_row).collect(),
            GenMode::Parallel | GenMode::RunAware => abr_par::par_map(n_rows, make_row),
        };
        let mut decisions = Vec::with_capacity(n_rows * row_len);
        for row in &rows {
            decisions.extend_from_slice(row);
        }
        Self {
            cfg,
            num_levels,
            buffer_max_secs,
            decisions: Rle::encode(&decisions),
        }
    }

    /// Online lookup: bins the live state and retrieves the stored optimum
    /// (binary search, no solving). Always resolves in slice 0 — the
    /// full-horizon (VOD) slice — regardless of `horizon_slices`.
    pub fn lookup(&self, buffer_secs: f64, prev: LevelIdx, throughput_kbps: f64) -> LevelIdx {
        let b = self.cfg.buffer_bins.index_of(buffer_secs);
        let p = prev.get().min(self.num_levels - 1);
        let c = self.cfg.throughput_bins.index_of(throughput_kbps);
        let idx = (b * self.num_levels + p) * self.cfg.throughput_bins.count + c;
        LevelIdx(self.decisions.get(idx) as usize)
    }

    /// Live lookup: resolves the probe in the slice enumerated for
    /// `effective_horizon` look-ahead chunks (the availability-truncated
    /// horizon of [`abr_core::mpc::live_effective_horizon`]), clamped to
    /// the slices stored. With `horizon_slices == 1`, or an effective
    /// horizon at the full look-ahead, this is exactly [`Self::lookup`].
    pub fn lookup_live(
        &self,
        buffer_secs: f64,
        prev: LevelIdx,
        throughput_kbps: f64,
        effective_horizon: usize,
    ) -> LevelIdx {
        let s = self
            .cfg
            .horizon
            .saturating_sub(effective_horizon.max(1))
            .min(self.cfg.horizon_slices - 1);
        let b = self.cfg.buffer_bins.index_of(buffer_secs);
        let p = prev.get().min(self.num_levels - 1);
        let c = self.cfg.throughput_bins.index_of(throughput_kbps);
        let grid = self.cfg.buffer_bins.count * self.num_levels * self.cfg.throughput_bins.count;
        let idx = s * grid + (b * self.num_levels + p) * self.cfg.throughput_bins.count + c;
        LevelIdx(self.decisions.get(idx) as usize)
    }

    /// Batched online lookup: resolves every probe in `batch`, writing the
    /// decided levels into the batch's output column (read back via
    /// [`DecisionBatch::level`]).
    ///
    /// The kernel is columnar: it bins all probes into flat table indices,
    /// argsorts the probes by index, and resolves them with one forward
    /// walk over the RLE runs ([`Rle::get_sorted_by`]) — so the binary
    /// search and the run-array cache lines are amortized across the batch
    /// instead of paid per probe. Bit-identity to [`lookup`](Self::lookup)
    /// is structural: each probe maps to the same flat index as the scalar
    /// path, and equal indices read equal stored values regardless of visit
    /// order.
    pub fn decide_batch(&self, batch: &mut DecisionBatch) {
        let DecisionBatch {
            buffer_secs,
            prev_level,
            throughput_kbps,
            levels,
            flat,
            order,
            ..
        } = batch;
        let n = buffer_secs.len();
        flat.clear();
        for i in 0..n {
            let b = self.cfg.buffer_bins.index_of(buffer_secs[i]);
            let p = (prev_level[i] as usize).min(self.num_levels - 1);
            let c = self.cfg.throughput_bins.index_of(throughput_kbps[i]);
            // Flat indices fit u32 by construction: the Rle length is u32.
            flat.push(((b * self.num_levels + p) * self.cfg.throughput_bins.count + c) as u32);
        }
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by_key(|&i| flat[i as usize]);
        levels.clear();
        levels.resize(n, 0);
        self.decisions.get_sorted_by(flat, order, levels);
    }

    /// Number of scenarios (rows) in the table.
    pub fn num_entries(&self) -> usize {
        self.decisions.len()
    }

    /// Number of RLE runs after compression.
    pub fn num_runs(&self) -> usize {
        self.decisions.runs()
    }

    /// Size of the uncompressed table: one byte per scenario (bin keys are
    /// implicit in the row index). The Table 1 "full table" column.
    pub fn full_size_bytes(&self) -> usize {
        self.num_entries()
    }

    /// Size of the run-length-coded table (the Table 1 "run length coding"
    /// column) — what the player actually ships.
    pub fn rle_size_bytes(&self) -> usize {
        self.decisions.size_bytes()
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.cfg
    }

    /// Buffer capacity the table was generated for.
    pub fn buffer_max_secs(&self) -> f64 {
        self.buffer_max_secs
    }

    /// Serializes the table to JSON (the artifact a player would download).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("table serializes")
    }

    /// Loads a table from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_core::mpc::optimize_horizon;
    use abr_video::envivio_video;

    fn small_table() -> FastMpcTable {
        let video = envivio_video();
        FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(12, 30.0))
    }

    #[test]
    fn paper_dimensions_give_50k_rows() {
        let cfg = TableConfig::paper_default();
        assert_eq!(cfg.buffer_bins.count, 100);
        assert_eq!(cfg.throughput_bins.count, 100);
        // 100 * 5 * 100 = 50,000 — the scenario count shown in Figure 5.
        assert_eq!(cfg.buffer_bins.count * 5 * cfg.throughput_bins.count, 50_000);
    }

    #[test]
    fn lookup_matches_exact_mpc_at_centroids() {
        let video = envivio_video();
        let cfg = TableConfig::with_levels(12, 30.0);
        let table = FastMpcTable::generate(&video, 30.0, cfg.clone());
        for b in [0, 5, 11] {
            for prev in 0..5 {
                for c in [0, 4, 11] {
                    let buffer = cfg.buffer_bins.centroid(b);
                    let thr = cfg.throughput_bins.centroid(c);
                    let exact = optimize_horizon(
                        &video,
                        0,
                        5,
                        buffer,
                        30.0,
                        Some(LevelIdx(prev)),
                        thr,
                        &cfg.weights,
                    )
                    .first();
                    assert_eq!(
                        table.lookup(buffer, LevelIdx(prev), thr),
                        exact,
                        "bin (b={b}, p={prev}, c={c})"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_states_behave_sensibly() {
        let t = small_table();
        // Deep starvation + slow link: bottom level.
        assert_eq!(t.lookup(0.0, LevelIdx(0), 120.0), LevelIdx(0));
        // Full buffer + fast link: top level.
        assert_eq!(t.lookup(30.0, LevelIdx(4), 9_500.0), LevelIdx(4));
        // Out-of-range queries clamp instead of panicking.
        assert_eq!(t.lookup(-1.0, LevelIdx(0), 50.0), LevelIdx(0));
        assert_eq!(t.lookup(99.0, LevelIdx(4), 1e6), LevelIdx(4));
    }

    #[test]
    fn rle_compresses_the_table_at_realistic_resolution() {
        // At coarse resolution runs are short and RLE overhead dominates;
        // at the paper's working resolutions compression wins (Table 1).
        let video = envivio_video();
        let t = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(50, 30.0));
        assert_eq!(t.num_entries(), 50 * 5 * 50);
        assert!(
            t.rle_size_bytes() < t.full_size_bytes(),
            "rle {} vs full {}",
            t.rle_size_bytes(),
            t.full_size_bytes()
        );
    }

    #[test]
    fn compression_improves_with_resolution() {
        // Table 1's trend: finer discretization -> better compression ratio.
        let video = envivio_video();
        let coarse = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(10, 30.0));
        let fine = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(40, 30.0));
        let ratio = |t: &FastMpcTable| t.rle_size_bytes() as f64 / t.full_size_bytes() as f64;
        assert!(
            ratio(&fine) < ratio(&coarse),
            "fine {} vs coarse {}",
            ratio(&fine),
            ratio(&coarse)
        );
    }

    #[test]
    fn all_generation_modes_agree_byte_for_byte() {
        let video = envivio_video();
        let cfg = TableConfig::with_levels(10, 30.0);
        let seq = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Sequential);
        let par = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Parallel);
        let ra = FastMpcTable::generate_with(&video, 30.0, cfg, GenMode::RunAware);
        assert_eq!(seq, par, "parallel must equal the sequential reference");
        assert_eq!(seq, ra, "run-aware must equal the sequential reference");
        assert_eq!(seq.decisions.decode(), ra.decisions.decode());
    }

    #[test]
    fn one_bin_dimensions_work_in_every_mode() {
        let video = envivio_video();
        let cfg = TableConfig {
            buffer_bins: BinSpec::linear(1, 0.0, 30.0),
            throughput_bins: BinSpec::log(1, 100.0, 10_000.0),
            horizon: 3,
            horizon_slices: 1,
            weights: QoeWeights::balanced(),
        };
        let seq = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Sequential);
        let par = FastMpcTable::generate_with(&video, 30.0, cfg.clone(), GenMode::Parallel);
        let ra = FastMpcTable::generate_with(&video, 30.0, cfg, GenMode::RunAware);
        assert_eq!(seq.num_entries(), 5);
        assert_eq!(seq, par);
        assert_eq!(seq, ra);
    }

    mod batch_differential {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        fn shared_table() -> &'static FastMpcTable {
            static TABLE: OnceLock<FastMpcTable> = OnceLock::new();
            TABLE.get_or_init(small_table)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Random probe batches: `decide_batch` equals N scalar
            /// `lookup`s, probe for probe.
            #[test]
            fn decide_batch_matches_lookup(
                probes in proptest::collection::vec(
                    (-5.0f64..40.0, 0usize..5, 50.0f64..20_000.0),
                    0..128,
                ),
            ) {
                let t = shared_table();
                let mut batch = DecisionBatch::new();
                for &(buffer, prev, thr) in &probes {
                    batch.push(0, buffer, LevelIdx(prev), thr);
                }
                t.decide_batch(&mut batch);
                for (i, &(buffer, prev, thr)) in probes.iter().enumerate() {
                    prop_assert_eq!(batch.level(i), t.lookup(buffer, LevelIdx(prev), thr));
                }
            }
        }
    }

    #[test]
    fn live_slice_zero_is_the_vod_table() {
        // A sliced table's full-horizon slice must agree with the plain
        // VOD table probe for probe, and lookup_live at the full horizon
        // must collapse to lookup.
        let video = envivio_video();
        let vod = FastMpcTable::generate(&video, 30.0, TableConfig::with_levels(10, 30.0));
        let sliced = FastMpcTable::generate(
            &video,
            30.0,
            TableConfig::with_levels(10, 30.0).live_slices(4),
        );
        assert_eq!(sliced.num_entries(), 4 * vod.num_entries());
        for (buffer, prev, thr) in
            [(0.0, 0, 120.0), (9.0, 2, 1500.0), (22.0, 3, 4000.0), (30.0, 4, 9500.0)]
        {
            let want = vod.lookup(buffer, LevelIdx(prev), thr);
            assert_eq!(sliced.lookup(buffer, LevelIdx(prev), thr), want);
            assert_eq!(sliced.lookup_live(buffer, LevelIdx(prev), thr, 5), want);
            // Horizons beyond the stored slices clamp to full-horizon.
            assert_eq!(sliced.lookup_live(buffer, LevelIdx(prev), thr, 99), want);
        }
    }

    #[test]
    fn live_slices_match_exact_truncated_solves_at_centroids() {
        let video = envivio_video();
        let cfg = TableConfig::with_levels(10, 30.0).live_slices(5);
        let table = FastMpcTable::generate(&video, 30.0, cfg.clone());
        for h_eff in 1..=5usize {
            for b in [0, 4, 9] {
                for c in [0, 5, 9] {
                    let buffer = cfg.buffer_bins.centroid(b);
                    let thr = cfg.throughput_bins.centroid(c);
                    let exact = optimize_horizon(
                        &video,
                        0,
                        h_eff,
                        buffer,
                        30.0,
                        Some(LevelIdx(2)),
                        thr,
                        &cfg.weights,
                    )
                    .first();
                    assert_eq!(
                        table.lookup_live(buffer, LevelIdx(2), thr, h_eff),
                        exact,
                        "h_eff={h_eff} bin (b={b}, c={c})"
                    );
                }
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_decisions() {
        let t = small_table();
        let back = FastMpcTable::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
        assert_eq!(
            back.lookup(15.0, LevelIdx(2), 1500.0),
            t.lookup(15.0, LevelIdx(2), 1500.0)
        );
    }

    #[test]
    fn decide_batch_matches_scalar_lookup_exhaustively_on_small_table() {
        let t = small_table();
        let cfg = t.config().clone();
        let mut batch = DecisionBatch::new();
        let mut expect = Vec::new();
        // Every centroid state plus the clamping extremes, in one batch.
        for b in 0..cfg.buffer_bins.count {
            for p in 0..5 {
                for c in 0..cfg.throughput_bins.count {
                    let buffer = cfg.buffer_bins.centroid(b);
                    let thr = cfg.throughput_bins.centroid(c);
                    batch.push(0, buffer, LevelIdx(p), thr);
                    expect.push(t.lookup(buffer, LevelIdx(p), thr));
                }
            }
        }
        for (buffer, prev, thr) in
            [(-1.0, 0, 50.0), (99.0, 4, 1e6), (0.0, 4, 100.0), (30.0, 0, 10_000.0)]
        {
            batch.push(7, buffer, LevelIdx(prev), thr);
            expect.push(t.lookup(buffer, LevelIdx(prev), thr));
        }
        t.decide_batch(&mut batch);
        assert_eq!(batch.len(), expect.len());
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(batch.level(i), want, "probe {i}");
        }
    }

    #[test]
    fn decide_batch_reuses_a_cleared_batch() {
        let t = small_table();
        let mut batch = DecisionBatch::new();
        for round in 0..3 {
            batch.clear();
            for i in 0..(8 + round) {
                batch.push(i, i as f64 * 2.5, LevelIdx(i % 5), 300.0 + i as f64 * 700.0);
            }
            t.decide_batch(&mut batch);
            for i in 0..batch.len() {
                assert_eq!(
                    batch.level(i),
                    t.lookup(i as f64 * 2.5, LevelIdx(i % 5), 300.0 + i as f64 * 700.0)
                );
            }
        }
    }

    #[test]
    fn decision_monotone_in_throughput_bin_majority() {
        // The decision should (overwhelmingly) not decrease as predicted
        // throughput rises, holding buffer and prev fixed. Binning can
        // introduce rare boundary wiggles; demand 95 % monotone steps.
        let t = small_table();
        let cfg = t.config().clone();
        let mut monotone = 0;
        let mut total = 0;
        for b in 0..cfg.buffer_bins.count {
            for p in 0..5 {
                let mut prev_level = 0usize;
                for c in 0..cfg.throughput_bins.count {
                    let lvl = t
                        .lookup(
                            cfg.buffer_bins.centroid(b),
                            LevelIdx(p),
                            cfg.throughput_bins.centroid(c),
                        )
                        .get();
                    if c > 0 {
                        total += 1;
                        if lvl >= prev_level {
                            monotone += 1;
                        }
                    }
                    prev_level = lvl;
                }
            }
        }
        assert!(
            monotone as f64 >= 0.95 * total as f64,
            "only {monotone}/{total} monotone steps"
        );
    }
}
