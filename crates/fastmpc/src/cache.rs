//! Cross-experiment cache of generated FastMPC tables.
//!
//! Several experiments (the figure-8/9/10 grids, fig11's sensitivity
//! panels, fig12's sweeps, table 1, the ablation, the multiplayer study)
//! generate a FastMPC decision table for the *same* (video, buffer,
//! weights, resolution) instance. Generation is the most expensive single
//! step left in `abr_harness all` — 50,000 exact MPC solves at paper
//! resolution — so [`TableCache`] memoizes whole [`FastMpcTable`]s keyed by
//! a content hash, making a full harness run generate each distinct table
//! exactly once (the sibling of `abr_offline::cache::OptCache` for the
//! table pipeline).
//!
//! Keys are content hashes (128-bit FNV-1a over the exact `f64` bit
//! patterns of the video timing/ladder/sizes, the buffer cap and every
//! field of the [`TableConfig`]), so a cache entry can never be served for
//! a different instance than the one it was generated for — and because
//! generation is bit-deterministic across [`crate::GenMode`]s, a hit
//! returns exactly the bytes a fresh generation would produce.

use crate::table::{FastMpcTable, TableConfig};
use abr_par::OnceMap;
use abr_video::{LevelIdx, QualityFn, Video};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// 128-bit FNV-1a, matching `abr_offline::cache`: cheap, dependency-free,
// and wide enough that collisions across a handful of cached tables are
// not a concern.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u128::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn len(&mut self, v: usize) {
        self.bytes(&(v as u64).to_le_bytes());
    }
}

/// Content hash identifying one table-generation instance: the video's
/// timing, ladder and per-chunk per-level sizes, the buffer cap, and every
/// field of the [`TableConfig`] (both bin specs, horizon, QoE weights
/// including the quality function). All floats are hashed by bit pattern,
/// so any observable difference in the instance yields a different key.
pub fn table_key(video: &Video, buffer_max_secs: f64, cfg: &TableConfig) -> u128 {
    let mut h = Fnv::new();
    // Video: timing, ladder, and per-chunk per-level sizes (covers VBR).
    h.f64(video.chunk_secs());
    h.len(video.num_chunks());
    h.len(video.ladder().len());
    for &r in video.ladder().levels() {
        h.f64(r);
    }
    for k in 0..video.num_chunks() {
        for l in 0..video.ladder().len() {
            h.f64(video.chunk_size_kbits(k, LevelIdx(l)));
        }
    }
    h.f64(buffer_max_secs);
    // Config: bins, horizon, weights.
    for bins in [&cfg.buffer_bins, &cfg.throughput_bins] {
        h.len(bins.count);
        h.f64(bins.lo);
        h.f64(bins.hi);
        h.byte(bins.log as u8);
    }
    h.len(cfg.horizon);
    h.len(cfg.horizon_slices);
    let w = &cfg.weights;
    h.f64(w.lambda);
    h.f64(w.mu);
    h.f64(w.mu_s);
    h.f64(w.mu_event);
    h.f64(w.w_lat);
    match &w.quality {
        QualityFn::Identity => h.byte(0),
        QualityFn::Log { r0, scale } => {
            h.byte(1);
            h.f64(*r0);
            h.f64(*scale);
        }
        QualityFn::Saturating { cap_kbps } => {
            h.byte(2);
            h.f64(*cap_kbps);
        }
        QualityFn::Table { knots } => {
            h.byte(3);
            h.len(knots.len());
            for &(b, q) in knots {
                h.f64(b);
                h.f64(q);
            }
        }
    }
    h.0
}

/// Counters describing what a [`TableCache`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCacheStats {
    /// Distinct tables currently cached.
    pub entries: usize,
    /// Tables produced by running the offline enumeration (cache misses).
    pub generates: u64,
    /// Tables served without generating (cache hits).
    pub hits: u64,
}

/// A thread-safe memo table of generated FastMPC tables.
///
/// [`ensure`](TableCache::ensure) returns the cached table for an instance,
/// generating it on first request. Concurrent requests for the *same*
/// missing instance are serialized per key (via [`abr_par::OnceMap`]) so
/// each distinct instance is generated exactly once per process — the
/// `generates` counter equals the number of entries, which the overhead
/// report surfaces as the exactly-once check. Hits are lock-free: a reader
/// of a populated key never waits behind a generation in flight for any
/// key, its own included.
#[derive(Debug, Default)]
pub struct TableCache {
    map: OnceMap<u128, FastMpcTable>,
    generates: AtomicU64,
    hits: AtomicU64,
}

impl TableCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct tables cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> TableCacheStats {
        TableCacheStats {
            entries: self.len(),
            generates: self.generates.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// The table for `(video, buffer_max_secs, cfg)`, generated on first
    /// request and served from memory afterwards. A hit is bit-identical to
    /// a fresh [`FastMpcTable::generate`].
    pub fn ensure(&self, video: &Video, buffer_max_secs: f64, cfg: &TableConfig) -> Arc<FastMpcTable> {
        let key = table_key(video, buffer_max_secs, cfg);
        self.ensure_with(key, || FastMpcTable::generate(video, buffer_max_secs, cfg.clone()))
    }

    /// [`ensure`](Self::ensure) with the key precomputed and the generator
    /// abstracted — the seam the tests use to park a generation mid-flight.
    fn ensure_with(&self, key: u128, gen: impl FnOnce() -> FastMpcTable) -> Arc<FastMpcTable> {
        let (table, generated) = self.map.get_or_init(key, gen);
        if generated {
            self.generates.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;

    fn small_cfg(buffer_max: f64) -> TableConfig {
        TableConfig::with_levels(6, buffer_max)
    }

    #[test]
    fn ensure_generates_each_instance_exactly_once() {
        let video = envivio_video();
        let cache = TableCache::new();
        let a = cache.ensure(&video, 30.0, &small_cfg(30.0));
        let b = cache.ensure(&video, 30.0, &small_cfg(30.0));
        let c = cache.ensure(&video, 20.0, &small_cfg(20.0));
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached table");
        assert!(!Arc::ptr_eq(&a, &c), "different instance, different table");
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.generates, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cached_table_is_bit_identical_to_fresh_generation() {
        let video = envivio_video();
        let cache = TableCache::new();
        let cached = cache.ensure(&video, 30.0, &small_cfg(30.0));
        let fresh = FastMpcTable::generate(&video, 30.0, small_cfg(30.0));
        assert_eq!(*cached, fresh);
        assert_eq!(cached.to_bytes(), fresh.to_bytes());
    }

    #[test]
    fn key_is_sensitive_to_every_config_field() {
        let video = envivio_video();
        let base = small_cfg(30.0);
        let base_key = table_key(&video, 30.0, &base);
        let mut horizon = base.clone();
        horizon.horizon = 4;
        let mut weights = base.clone();
        weights.weights.mu = 7777.0;
        let mut bins = base.clone();
        bins.throughput_bins.count += 1;
        for (what, cfg) in [("horizon", &horizon), ("weights", &weights), ("bins", &bins)] {
            assert_ne!(base_key, table_key(&video, 30.0, cfg), "{what}");
        }
        assert_ne!(base_key, table_key(&video, 29.0, &base), "buffer cap");
    }

    #[test]
    fn hit_completes_while_another_key_generates() {
        // The miss-storm head-of-line fix: with the old per-slot mutex a
        // populated key's readers could queue behind lock traffic; now a
        // hit is lock-free and must complete while a *different* key's
        // generation is parked mid-flight.
        let video = envivio_video();
        let cache = Arc::new(TableCache::new());
        let hot = cache.ensure(&video, 30.0, &small_cfg(30.0));
        let hot_key = table_key(&video, 30.0, &small_cfg(30.0));
        let cold_key = hot_key.wrapping_add(1);
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let cache2 = Arc::clone(&cache);
        let video2 = video.clone();
        let generator = std::thread::spawn(move || {
            cache2.ensure_with(cold_key, move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap(); // hold the generation open
                FastMpcTable::generate(&video2, 20.0, small_cfg(20.0))
            })
        });
        started_rx.recv().unwrap(); // the cold key is now mid-generation
        let again = cache.ensure(&video, 30.0, &small_cfg(30.0));
        assert!(Arc::ptr_eq(&hot, &again), "hit served while cold key generates");
        release_tx.send(()).unwrap();
        generator.join().unwrap();
        let stats = cache.stats();
        assert_eq!(stats.generates, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn concurrent_ensure_generates_once() {
        let video = envivio_video();
        let cache = Arc::new(TableCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let video = &video;
                s.spawn(move || {
                    cache.ensure(video, 30.0, &small_cfg(30.0));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.generates, 1, "racing threads must share one generation");
        assert_eq!(stats.hits, 3);
    }
}
