//! Value binning for the FastMPC state space.

use serde::{Deserialize, Serialize};

/// A uniform or logarithmic binning of a closed value range.
///
/// Buffer levels bin linearly (they live on a bounded `[0, B_max]` range);
/// throughput bins are logarithmic so resolution concentrates where bitrate
/// decisions actually flip (a 100 kbps difference matters at 400 kbps, not
/// at 8 Mbps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinSpec {
    /// Number of bins (>= 1).
    pub count: usize,
    /// Lower edge of the binned range.
    pub lo: f64,
    /// Upper edge of the binned range.
    pub hi: f64,
    /// Logarithmic spacing (requires `lo > 0`).
    pub log: bool,
}

impl BinSpec {
    /// Linear binning of `[lo, hi]` into `count` bins.
    pub fn linear(count: usize, lo: f64, hi: f64) -> Self {
        assert!(count >= 1, "need at least one bin");
        assert!(lo.is_finite() && hi > lo, "invalid range [{lo}, {hi}]");
        Self {
            count,
            lo,
            hi,
            log: false,
        }
    }

    /// Logarithmic binning of `[lo, hi]` into `count` bins (`lo > 0`).
    pub fn log(count: usize, lo: f64, hi: f64) -> Self {
        assert!(count >= 1, "need at least one bin");
        assert!(lo > 0.0 && hi > lo, "log bins need 0 < lo < hi");
        Self {
            count,
            lo,
            hi,
            log: true,
        }
    }

    /// Index of the bin containing `x`, clamped into range — out-of-range
    /// queries land in the first/last bin, which is exactly the "closest
    /// key" semantics of the paper's lookup.
    pub fn index_of(&self, x: f64) -> usize {
        let (lo, hi, x) = if self.log {
            (self.lo.ln(), self.hi.ln(), x.max(f64::MIN_POSITIVE).ln())
        } else {
            (self.lo, self.hi, x)
        };
        if x <= lo {
            return 0;
        }
        if x >= hi {
            return self.count - 1;
        }
        let frac = (x - lo) / (hi - lo);
        ((frac * self.count as f64) as usize).min(self.count - 1)
    }

    /// Centroid (midpoint) of bin `i` — the representative value solved
    /// offline. Panics if out of range.
    pub fn centroid(&self, i: usize) -> f64 {
        assert!(i < self.count, "bin {i} out of range (count {})", self.count);
        let frac = (i as f64 + 0.5) / self.count as f64;
        if self.log {
            (self.lo.ln() + frac * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + frac * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_index_and_centroid() {
        let b = BinSpec::linear(10, 0.0, 30.0);
        assert_eq!(b.index_of(0.0), 0);
        assert_eq!(b.index_of(1.4), 0);
        assert_eq!(b.index_of(3.1), 1);
        assert_eq!(b.index_of(29.99), 9);
        assert_eq!(b.index_of(30.0), 9);
        assert!((b.centroid(0) - 1.5).abs() < 1e-12);
        assert!((b.centroid(9) - 28.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_clamps() {
        let b = BinSpec::linear(10, 0.0, 30.0);
        assert_eq!(b.index_of(-5.0), 0);
        assert_eq!(b.index_of(100.0), 9);
        let l = BinSpec::log(10, 100.0, 10_000.0);
        assert_eq!(l.index_of(1.0), 0);
        assert_eq!(l.index_of(1e9), 9);
    }

    #[test]
    fn log_bins_concentrate_low() {
        let b = BinSpec::log(4, 100.0, 10_000.0);
        // Decades split evenly in log space: edges 100, ~316, 1000, ~3162, 10000.
        assert_eq!(b.index_of(200.0), 0);
        assert_eq!(b.index_of(500.0), 1);
        assert_eq!(b.index_of(2000.0), 2);
        assert_eq!(b.index_of(5000.0), 3);
    }

    #[test]
    fn single_bin_swallows_everything() {
        let b = BinSpec::linear(1, 0.0, 1.0);
        assert_eq!(b.index_of(-1.0), 0);
        assert_eq!(b.index_of(0.5), 0);
        assert_eq!(b.index_of(2.0), 0);
        assert!((b.centroid(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn centroid_bounds_checked() {
        let _ = BinSpec::linear(3, 0.0, 1.0).centroid(3);
    }

    proptest! {
        /// A centroid always falls back into its own bin (both spacings).
        #[test]
        fn centroid_round_trips(count in 1usize..200, i_frac in 0.0f64..1.0) {
            for spec in [
                BinSpec::linear(count, 0.0, 30.0),
                BinSpec::log(count, 100.0, 10_000.0),
            ] {
                let i = ((i_frac * count as f64) as usize).min(count - 1);
                prop_assert_eq!(spec.index_of(spec.centroid(i)), i);
            }
        }

        /// index_of is monotone non-decreasing in the query value.
        #[test]
        fn index_monotone(a in 0.0f64..40.0, delta in 0.0f64..40.0) {
            let b = BinSpec::linear(100, 0.0, 30.0);
            prop_assert!(b.index_of(a + delta) >= b.index_of(a));
            let l = BinSpec::log(100, 100.0, 10_000.0);
            prop_assert!(l.index_of(100.0 + a * 200.0 + delta * 200.0)
                >= l.index_of(100.0 + a * 200.0));
        }
    }
}
