//! Zero-copy decision-table access over validated `FMPC` bytes.
//!
//! The warm tier of the tiered table store keeps evicted tables as on-disk
//! binaries and serves them memory-mapped. Deserializing such a file back
//! into an owned [`FastMpcTable`] would copy the whole run array — exactly
//! the allocation the tier exists to avoid — so [`TableView`] runs
//! `lookup`/`decide_batch` directly over the encoded bytes:
//!
//! * construction calls [`codec::parse`] — the *same* validator
//!   [`FastMpcTable::from_bytes`] is built on — so a view exists only for
//!   byte strings an owned decode would accept, and the offsets it reads
//!   through certify in-bounds, in-ladder accesses (the validated-prefix
//!   invariant; see `DESIGN.md` §12);
//! * run starts are stored little-endian at arbitrary alignment, so every
//!   access goes through `u32::from_le_bytes` on a 4-byte slice — no
//!   pointer casts, no `unsafe`, and identical behavior on any
//!   endianness;
//! * the lookup kernels mirror [`Rle::get`] / [`Rle::get_sorted_by`]
//!   (binary search, then a galloping forward cursor for sorted batches)
//!   and are pinned bit-identical to the owned path by proptest
//!   differentials below.
//!
//! `B` is any stable byte container — `Vec<u8>` in tests,
//! `abr_net::mmap::Mmap` in the warm tier ([`crate::TableHandle`]).
//!
//! [`Rle::get`]: crate::Rle::get
//! [`Rle::get_sorted_by`]: crate::Rle::get_sorted_by

use crate::codec::{self, CodecError};
use crate::table::{DecisionBatch, TableConfig};
use abr_video::LevelIdx;

/// A decision table served directly from encoded `FMPC` bytes.
///
/// Behaves exactly like the [`FastMpcTable`](crate::FastMpcTable) decoded
/// from the same bytes — same clamping, same decisions, bit for bit — but
/// owns nothing beyond the byte container and a parsed header.
#[derive(Debug)]
pub struct TableView<B> {
    bytes: B,
    cfg: TableConfig,
    num_levels: usize,
    buffer_max_secs: f64,
    len: u32,
    runs: usize,
    starts_off: usize,
    values_off: usize,
}

impl<B: AsRef<[u8]>> TableView<B> {
    /// Validates `bytes` as an encoded table and wraps them. Accepts and
    /// rejects exactly the byte strings
    /// [`FastMpcTable::from_bytes`](crate::FastMpcTable::from_bytes) does,
    /// with the same errors (both run [`codec::parse`]).
    pub fn new(bytes: B) -> Result<Self, CodecError> {
        let l = codec::parse(bytes.as_ref())?;
        Ok(Self {
            bytes,
            cfg: l.cfg,
            num_levels: l.num_levels,
            buffer_max_secs: l.buffer_max_secs,
            len: l.len,
            runs: l.runs,
            starts_off: l.starts_off,
            values_off: l.values_off,
        })
    }

    /// Start offset of run `run` (unaligned little-endian read).
    #[inline]
    fn start_at(&self, run: usize) -> u32 {
        let off = self.starts_off + 4 * run;
        u32::from_le_bytes(self.bytes.as_ref()[off..off + 4].try_into().unwrap())
    }

    /// Value of run `run`.
    #[inline]
    fn value_at(&self, run: usize) -> u8 {
        self.bytes.as_ref()[self.values_off + run]
    }

    /// Index of the run containing flat index `idx` — the binary search
    /// [`Rle::get`](crate::Rle::get) does, over in-place starts.
    #[inline]
    fn run_of(&self, idx: u32) -> usize {
        debug_assert!(idx < self.len);
        let (mut lo, mut hi) = (0usize, self.runs);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.start_at(mid) <= idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo - 1
    }

    /// Online lookup over the mapped bytes; bit-identical to
    /// [`FastMpcTable::lookup`](crate::FastMpcTable::lookup) on the same
    /// encoded table.
    pub fn lookup(&self, buffer_secs: f64, prev: LevelIdx, throughput_kbps: f64) -> LevelIdx {
        let b = self.cfg.buffer_bins.index_of(buffer_secs);
        let p = prev.get().min(self.num_levels - 1);
        let c = self.cfg.throughput_bins.index_of(throughput_kbps);
        let idx = (b * self.num_levels + p) * self.cfg.throughput_bins.count + c;
        LevelIdx(self.value_at(self.run_of(idx as u32)) as usize)
    }

    /// Live lookup in the truncated-horizon slice over the mapped bytes;
    /// bit-identical to
    /// [`FastMpcTable::lookup_live`](crate::FastMpcTable::lookup_live).
    pub fn lookup_live(
        &self,
        buffer_secs: f64,
        prev: LevelIdx,
        throughput_kbps: f64,
        effective_horizon: usize,
    ) -> LevelIdx {
        let s = self
            .cfg
            .horizon
            .saturating_sub(effective_horizon.max(1))
            .min(self.cfg.horizon_slices - 1);
        let b = self.cfg.buffer_bins.index_of(buffer_secs);
        let p = prev.get().min(self.num_levels - 1);
        let c = self.cfg.throughput_bins.index_of(throughput_kbps);
        let grid = self.cfg.buffer_bins.count * self.num_levels * self.cfg.throughput_bins.count;
        let idx = s * grid + (b * self.num_levels + p) * self.cfg.throughput_bins.count + c;
        LevelIdx(self.value_at(self.run_of(idx as u32)) as usize)
    }

    /// Batched lookup over the mapped bytes; bit-identical to
    /// [`FastMpcTable::decide_batch`](crate::FastMpcTable::decide_batch).
    ///
    /// Same columnar kernel: bin every probe to a flat index, argsort, one
    /// galloping forward cursor over the run starts (the in-place analogue
    /// of [`Rle::get_sorted_by`](crate::Rle::get_sorted_by)).
    pub fn decide_batch(&self, batch: &mut DecisionBatch) {
        let DecisionBatch {
            buffer_secs,
            prev_level,
            throughput_kbps,
            levels,
            flat,
            order,
            ..
        } = batch;
        let n = buffer_secs.len();
        flat.clear();
        for i in 0..n {
            let b = self.cfg.buffer_bins.index_of(buffer_secs[i]);
            let p = (prev_level[i] as usize).min(self.num_levels - 1);
            let c = self.cfg.throughput_bins.index_of(throughput_kbps[i]);
            flat.push(((b * self.num_levels + p) * self.cfg.throughput_bins.count + c) as u32);
        }
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by_key(|&i| flat[i as usize]);
        levels.clear();
        levels.resize(n, 0);
        let mut run = 0usize;
        for &pos in order.iter() {
            let idx = flat[pos as usize];
            assert!(idx < self.len, "index {idx} out of range");
            if self.start_at(run) > idx {
                run = self.run_of(idx);
            } else {
                // Gallop forward, then binary-search the bracketed window.
                let mut lo = run;
                let mut step = 1usize;
                while lo + step < self.runs && self.start_at(lo + step) <= idx {
                    lo += step;
                    step <<= 1;
                }
                let mut hi = (lo + step).min(self.runs);
                while lo + 1 < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.start_at(mid) <= idx {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                run = lo;
            }
            levels[pos as usize] = self.value_at(run);
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.cfg
    }

    /// Ladder size the table was generated for.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Buffer capacity the table was generated for.
    pub fn buffer_max_secs(&self) -> f64 {
        self.buffer_max_secs
    }

    /// Number of scenarios (rows) in the table.
    pub fn num_entries(&self) -> usize {
        self.len as usize
    }

    /// Number of RLE runs in the encoded table.
    pub fn num_runs(&self) -> usize {
        self.runs
    }

    /// Size of the underlying encoded bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.as_ref().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FastMpcTable, GenMode};
    use abr_video::envivio_video;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn shared_bytes() -> &'static Vec<u8> {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES.get_or_init(|| {
            FastMpcTable::generate_with(
                &envivio_video(),
                30.0,
                TableConfig::with_levels(12, 30.0),
                GenMode::RunAware,
            )
            .to_bytes()
        })
    }

    #[test]
    fn view_parses_what_from_bytes_parses() {
        let bytes = shared_bytes();
        let view = TableView::new(bytes.clone()).unwrap();
        let owned = FastMpcTable::from_bytes(bytes).unwrap();
        assert_eq!(view.config(), owned.config());
        assert_eq!(view.num_levels(), 5);
        assert_eq!(view.buffer_max_secs(), owned.buffer_max_secs());
        assert_eq!(view.num_entries(), owned.num_entries());
        assert_eq!(view.num_runs(), owned.num_runs());
        assert_eq!(view.size_bytes(), bytes.len());
    }

    #[test]
    fn view_over_mmap_matches_owned_lookup() {
        let bytes = shared_bytes();
        let mut path = std::env::temp_dir();
        path.push(format!("abr_view_test_{}.fmpc", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        let map = abr_net::mmap::Mmap::open(&path).unwrap();
        let view = TableView::new(map).unwrap();
        let owned = FastMpcTable::from_bytes(bytes).unwrap();
        for (buffer, prev, thr) in
            [(0.0, 0, 120.0), (12.0, 2, 2200.0), (30.0, 4, 9500.0), (-1.0, 0, 50.0), (99.0, 4, 1e6)]
        {
            assert_eq!(
                view.lookup(buffer, LevelIdx(prev), thr),
                owned.lookup(buffer, LevelIdx(prev), thr),
            );
        }
        drop(view);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncation_prefixes_identically_to_owned_decode() {
        let bytes = shared_bytes();
        for cut in 0..bytes.len() {
            let owned_err = FastMpcTable::from_bytes(&bytes[..cut]).err();
            let view_err = TableView::new(&bytes[..cut]).err();
            assert!(view_err.is_some(), "every proper prefix must be rejected (cut {cut})");
            assert_eq!(owned_err, view_err, "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(TableView::new(&padded[..]).unwrap_err(), CodecError::Truncated);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Scalar differential: every probe through the view equals the
        /// owned decode of the same bytes, bit for bit.
        #[test]
        fn view_lookup_matches_owned(
            probes in proptest::collection::vec(
                (-5.0f64..40.0, 0usize..5, 50.0f64..20_000.0),
                1..64,
            ),
        ) {
            let bytes = shared_bytes();
            let view = TableView::new(bytes.clone()).unwrap();
            let owned = FastMpcTable::from_bytes(bytes).unwrap();
            for &(buffer, prev, thr) in &probes {
                prop_assert_eq!(
                    view.lookup(buffer, LevelIdx(prev), thr),
                    owned.lookup(buffer, LevelIdx(prev), thr)
                );
            }
        }

        /// Batch differential: the view's columnar kernel equals the owned
        /// batch kernel and N scalar lookups, probe for probe.
        #[test]
        fn view_decide_batch_matches_owned(
            probes in proptest::collection::vec(
                (-5.0f64..40.0, 0usize..5, 50.0f64..20_000.0),
                0..128,
            ),
        ) {
            let bytes = shared_bytes();
            let view = TableView::new(bytes.clone()).unwrap();
            let owned = FastMpcTable::from_bytes(bytes).unwrap();
            let mut view_batch = DecisionBatch::new();
            let mut owned_batch = DecisionBatch::new();
            for &(buffer, prev, thr) in &probes {
                view_batch.push(0, buffer, LevelIdx(prev), thr);
                owned_batch.push(0, buffer, LevelIdx(prev), thr);
            }
            view.decide_batch(&mut view_batch);
            owned.decide_batch(&mut owned_batch);
            for (i, &(buffer, prev, thr)) in probes.iter().enumerate() {
                prop_assert_eq!(view_batch.level(i), owned_batch.level(i));
                prop_assert_eq!(view_batch.level(i), owned.lookup(buffer, LevelIdx(prev), thr));
            }
        }

        /// Corruption differential: any single-byte flip is accepted or
        /// rejected identically by the view and the owned decode; when both
        /// accept, the tables still agree everywhere probed.
        #[test]
        fn corrupt_bytes_reject_identically(
            pos_frac in 0.0f64..1.0,
            delta in 1u8..=255,
            probes in proptest::collection::vec(
                (-5.0f64..40.0, 0usize..5, 50.0f64..20_000.0),
                1..16,
            ),
        ) {
            let mut bytes = shared_bytes().clone();
            let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[pos] = bytes[pos].wrapping_add(delta);
            let owned = FastMpcTable::from_bytes(&bytes);
            let view = TableView::new(bytes.clone());
            prop_assert_eq!(owned.as_ref().err(), view.as_ref().err(), "flip at {}", pos);
            if let (Ok(owned), Ok(view)) = (owned, view) {
                for &(buffer, prev, thr) in &probes {
                    prop_assert_eq!(
                        view.lookup(buffer, LevelIdx(prev), thr),
                        owned.lookup(buffer, LevelIdx(prev), thr)
                    );
                }
            }
        }
    }
}
