//! FastMPC — using MPC in practice without an online solver (Section 5).
//!
//! The exact MPC controller solves a discrete optimization before every
//! chunk, which is too heavy for low-end devices and requires bundling
//! solver logic with the player. FastMPC replaces the online solve with an
//! **offline-enumerated decision table**:
//!
//! 1. the state space — (current buffer level, previous bitrate, predicted
//!    throughput) — is **binned** ([`BinSpec`], Section 5.2 "compaction via
//!    binning"; bin keys are implicit in the row index, so nothing but the
//!    decisions is stored);
//! 2. each bin centroid's instance is solved exactly offline
//!    ([`FastMpcTable::generate`], standing in for the paper's CPLEX runs);
//! 3. the decision vector is **run-length encoded** ([`Rle`], Section 5.2
//!    "table compression" — neighbouring scenarios share optima, so RLE
//!    shrinks the table to tens of kilobytes);
//! 4. online, the player does a **binary-search lookup**
//!    ([`FastMpc`], [`Rle::get`]) — no solver, microseconds per decision.
//!    Fleet-scale callers batch lookups instead: [`DecisionBatch`] +
//!    [`FastMpcTable::decide_batch`] bin a whole struct-of-arrays batch of
//!    sessions, argsort the probes, and resolve them with one forward walk
//!    over the RLE runs ([`Rle::get_sorted_by`]) — bit-identical to N
//!    scalar lookups, with the dispatch overhead amortized across the
//!    batch.
//!
//! With the paper's parameters (100 buffer bins × 5 previous bitrates ×
//! 100 throughput bins) the table has exactly the 50,000 rows of Figure 5.
//! Table-size accounting for Table 1 is provided by
//! [`FastMpcTable::full_size_bytes`] and [`FastMpcTable::rle_size_bytes`].
//!
//! The enumeration pipeline is parallel and run-aware: (buffer, previous
//! level) rows fan out across threads via `abr-par`, and within a row a
//! divide-and-conquer pass over the throughput axis settles candidate runs
//! with cheap hint-seeded solves ([`GenMode`]). Every mode is byte-identical
//! to the sequential reference. Tables ship either as JSON
//! ([`FastMpcTable::to_json`]) or as the compact binary format
//! ([`FastMpcTable::to_bytes`], [`codec`]).
//!
//! Fleet-scale catalogs do not fit every table in memory: the tiered
//! [`TableStore`] bounds the resident (hot) set under a byte budget,
//! spills evictees to disk, and serves them back zero-copy as mmap'd
//! [`TableView`]s — with per-key exactly-once generation stampede control
//! (see [`store`] and [`view`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bins;
pub mod cache;
pub mod codec;
mod controller;
mod rle;
pub mod store;
mod table;
pub mod view;

pub use bins::BinSpec;
pub use cache::{table_key, TableCache, TableCacheStats};
pub use codec::CodecError;
pub use controller::FastMpc;
pub use rle::Rle;
pub use store::{TableHandle, TableStore, TableStoreConfig, TableStoreStats};
pub use table::{DecisionBatch, FastMpcTable, GenMode, TableConfig};
pub use view::TableView;
