//! Tiered decision-table catalog: bounded hot tier, mmap'd warm tier,
//! exactly-once cold generation.
//!
//! The unbounded [`TableCache`](crate::TableCache) is right for one
//! experiment grid; a fleet serving a million-video catalog cannot hold a
//! million tables in memory. Real catalogs are Zipf-skewed — a small hot
//! set takes most traffic, a long cold tail takes the rest — so
//! [`TableStore`] layers three tiers behind the same `ensure()` chokepoint:
//!
//! * **Hot**: owned [`FastMpcTable`]s under a byte budget
//!   ([`TableStoreConfig::hot_budget_bytes`], accounted at
//!   [`FastMpcTable::binary_size_bytes`]), evicted clock-style (second
//!   chance: a hit sets a referenced bit; the hand clears one bit per
//!   pass before evicting);
//! * **Warm**: evicted tables spill to `warm_dir` as `FMPC` binaries
//!   (write-to-temp + rename, so a file is never observed half-written)
//!   and are served back as zero-copy [`TableView`]s over mmap'd bytes —
//!   a warm miss costs a page fault, not a regeneration;
//! * **Cold**: a genuine miss runs one offline enumeration fleet-wide,
//!   guarded per key by [`abr_par::OnceMap`] — a miss storm on one video
//!   generates once while every other key proceeds in parallel, and hits
//!   never wait behind any generation.
//!
//! Without a warm directory, eviction forgets the table entirely and
//! resets that key's exactly-once epoch (the next miss regenerates). The
//! default configuration (unbounded budget, no warm dir) behaves exactly
//! like the unbounded cache.

use crate::cache::table_key;
use crate::table::{DecisionBatch, FastMpcTable, TableConfig};
use crate::view::TableView;
use abr_net::mmap::Mmap;
use abr_par::OnceMap;
use abr_video::{LevelIdx, Video};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A table served from either tier, sharing one decision interface.
///
/// `Owned` is a hot-tier (or freshly generated) in-memory table; `Mapped`
/// is a warm-tier zero-copy view over mmap'd bytes. The two are
/// bit-identical decision for decision (proptest-pinned in
/// [`crate::view`]), so callers — the [`FastMpc`](crate::FastMpc)
/// controller above all — never care which tier answered.
#[derive(Debug, Clone)]
pub enum TableHandle {
    /// An in-memory table (hot tier, or direct generation).
    Owned(Arc<FastMpcTable>),
    /// A zero-copy view over an mmap'd warm-tier binary.
    Mapped(Arc<TableView<Mmap>>),
}

impl TableHandle {
    /// Online lookup; see [`FastMpcTable::lookup`].
    pub fn lookup(&self, buffer_secs: f64, prev: LevelIdx, throughput_kbps: f64) -> LevelIdx {
        match self {
            TableHandle::Owned(t) => t.lookup(buffer_secs, prev, throughput_kbps),
            TableHandle::Mapped(v) => v.lookup(buffer_secs, prev, throughput_kbps),
        }
    }

    /// Live lookup in the truncated-horizon slice; see
    /// [`FastMpcTable::lookup_live`].
    pub fn lookup_live(
        &self,
        buffer_secs: f64,
        prev: LevelIdx,
        throughput_kbps: f64,
        effective_horizon: usize,
    ) -> LevelIdx {
        match self {
            TableHandle::Owned(t) => {
                t.lookup_live(buffer_secs, prev, throughput_kbps, effective_horizon)
            }
            TableHandle::Mapped(v) => {
                v.lookup_live(buffer_secs, prev, throughput_kbps, effective_horizon)
            }
        }
    }

    /// Batched lookup; see [`FastMpcTable::decide_batch`].
    pub fn decide_batch(&self, batch: &mut DecisionBatch) {
        match self {
            TableHandle::Owned(t) => t.decide_batch(batch),
            TableHandle::Mapped(v) => v.decide_batch(batch),
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        match self {
            TableHandle::Owned(t) => t.config(),
            TableHandle::Mapped(v) => v.config(),
        }
    }

    /// Buffer capacity the table was generated for.
    pub fn buffer_max_secs(&self) -> f64 {
        match self {
            TableHandle::Owned(t) => t.buffer_max_secs(),
            TableHandle::Mapped(v) => v.buffer_max_secs(),
        }
    }

    /// Whether this handle is served zero-copy from the warm tier.
    pub fn is_mapped(&self) -> bool {
        matches!(self, TableHandle::Mapped(_))
    }
}

/// Sizing and spill policy for a [`TableStore`].
#[derive(Debug, Clone)]
pub struct TableStoreConfig {
    /// Byte budget for the hot tier, accounted at each table's
    /// [`FastMpcTable::binary_size_bytes`]. Installing past the budget
    /// evicts clock-style until the newcomer fits; a single table larger
    /// than the whole budget still gets to be the one resident (the store
    /// never thrashes itself empty).
    pub hot_budget_bytes: usize,
    /// Directory for warm-tier spill files (`<key>.fmpc`). `None`
    /// disables the warm tier: eviction forgets the table and the next
    /// miss regenerates it.
    pub warm_dir: Option<PathBuf>,
}

impl Default for TableStoreConfig {
    /// Unbounded and memory-only — the behavior of the unbounded
    /// [`TableCache`](crate::TableCache).
    fn default() -> Self {
        Self {
            hot_budget_bytes: usize::MAX,
            warm_dir: None,
        }
    }
}

/// Counters describing what a [`TableStore`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStoreStats {
    /// Tables currently resident in the hot tier.
    pub hot_entries: usize,
    /// Bytes accounted against the hot budget right now.
    pub hot_bytes: usize,
    /// Requests answered by the hot tier.
    pub hot_hits: u64,
    /// Requests answered zero-copy by the warm tier.
    pub warm_hits: u64,
    /// Offline enumerations run (cold misses) — with stampede control,
    /// exactly one per distinct instance per epoch.
    pub generates: u64,
    /// Hot-tier evictions (spilled to warm when a warm dir is configured).
    pub evictions: u64,
}

/// One hot-tier resident.
#[derive(Debug)]
struct HotEntry {
    table: Arc<FastMpcTable>,
    bytes: usize,
    /// Clock second-chance bit, set on every hit.
    referenced: bool,
    /// Matches this entry to its clock-queue ticket; a stale ticket (from
    /// an evicted-then-reinstalled key) is discarded instead of acted on.
    stamp: u64,
}

/// The hot tier: resident map plus the clock queue driving eviction.
#[derive(Debug, Default)]
struct HotTier {
    map: HashMap<u128, HotEntry>,
    /// Clock order: front is the hand. Entries are `(key, stamp)`.
    queue: VecDeque<(u128, u64)>,
    bytes: usize,
    next_stamp: u64,
}

/// A tiered, bounded catalog of generated FastMPC tables.
///
/// [`ensure`](TableStore::ensure) returns a [`TableHandle`] for an
/// instance — hot, warm, or generated exactly once under stampede control.
/// See the [module docs](self) for the tier semantics.
#[derive(Debug, Default)]
pub struct TableStore {
    cfg: TableStoreConfig,
    hot: Mutex<HotTier>,
    /// Open warm-tier views, one mmap per key for the store's lifetime.
    warm_views: OnceMap<u128, TableView<Mmap>>,
    /// Per-key generation gates; an entry marks "this epoch has a table
    /// in some tier". Eviction without a warm spill removes the entry,
    /// opening a fresh epoch for regeneration.
    gates: OnceMap<u128, ()>,
    hot_hits: AtomicU64,
    warm_hits: AtomicU64,
    generates: AtomicU64,
    evictions: AtomicU64,
}

impl TableStore {
    /// An unbounded, memory-only store (the [`Default`] configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// A store with an explicit budget and spill policy.
    pub fn with_config(cfg: TableStoreConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Tables currently resident in the hot tier.
    pub fn len(&self) -> usize {
        self.hot.lock().unwrap_or_else(|p| p.into_inner()).map.len()
    }

    /// Whether the hot tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the tier counters.
    pub fn stats(&self) -> TableStoreStats {
        let (hot_entries, hot_bytes) = {
            let hot = self.hot.lock().unwrap_or_else(|p| p.into_inner());
            (hot.map.len(), hot.bytes)
        };
        TableStoreStats {
            hot_entries,
            hot_bytes,
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            generates: self.generates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The table for `(video, buffer_max_secs, cfg)` — hot, warm, or
    /// generated exactly once. A handle from any tier is bit-identical to
    /// a fresh [`FastMpcTable::generate`].
    pub fn ensure(&self, video: &Video, buffer_max_secs: f64, cfg: &TableConfig) -> TableHandle {
        let key = table_key(video, buffer_max_secs, cfg);
        self.ensure_with(key, || FastMpcTable::generate(video, buffer_max_secs, cfg.clone()))
    }

    /// [`ensure`](Self::ensure) with the key precomputed and the generator
    /// abstracted — the seam tests use to observe and park generations.
    pub(crate) fn ensure_with(&self, key: u128, gen: impl FnOnce() -> FastMpcTable) -> TableHandle {
        // At most one retry pass ever generates (winning the gate returns
        // from the loop), so the FnOnce travels in an Option.
        let mut gen = Some(gen);
        loop {
            if let Some(h) = self.hot_get(key) {
                self.hot_hits.fetch_add(1, Ordering::Relaxed);
                return h;
            }
            if let Some(h) = self.warm_get(key) {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                return h;
            }
            // Cold path: win this key's gate or wait for whoever has it.
            let mut produced = None;
            let (_, won) = self.gates.get_or_init(key, || {
                // Re-check the tiers under the gate: between our miss and
                // winning a *fresh* epoch (post-eviction), another caller
                // may already have reinstalled the table.
                if let Some(h) = self.hot_get(key) {
                    self.hot_hits.fetch_add(1, Ordering::Relaxed);
                    produced = Some(h);
                    return;
                }
                if let Some(h) = self.warm_get(key) {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                    produced = Some(h);
                    return;
                }
                let generate = gen.take().expect("gate won at most once per call");
                let table = Arc::new(generate());
                self.generates.fetch_add(1, Ordering::Relaxed);
                self.install(key, Arc::clone(&table));
                produced = Some(TableHandle::Owned(table));
            });
            if won {
                if let Some(h) = produced {
                    return h;
                }
            }
            // Lost the race (or hit a stale epoch): the winner's install
            // is visible in a tier now — or was itself already evicted,
            // in which case the gate entry is gone and the next pass
            // opens a new epoch. Either way, go around.
        }
    }

    /// Hot-tier probe; sets the clock referenced bit on a hit.
    fn hot_get(&self, key: u128) -> Option<TableHandle> {
        let mut hot = self.hot.lock().unwrap_or_else(|p| p.into_inner());
        let entry = hot.map.get_mut(&key)?;
        entry.referenced = true;
        Some(TableHandle::Owned(Arc::clone(&entry.table)))
    }

    /// Warm-tier probe: an already-open view, else open + validate the
    /// spill file (exactly one mapping per key wins; losers drop theirs).
    fn warm_get(&self, key: u128) -> Option<TableHandle> {
        let dir = self.cfg.warm_dir.as_ref()?;
        if let Some(v) = self.warm_views.get(&key) {
            return Some(TableHandle::Mapped(v));
        }
        let path = dir.join(format!("{key:032x}.fmpc"));
        let map = Mmap::open(&path).ok()?;
        // A spill file that fails validation is treated as absent (the
        // cold path regenerates); it can only mean outside interference,
        // since spills are written whole and renamed into place.
        let view = TableView::new(map).ok()?;
        self.warm_views.insert(key, Arc::new(view));
        self.warm_views.get(&key).map(TableHandle::Mapped)
    }

    /// Installs a freshly generated table into the hot tier, evicting
    /// clock-style until it fits the byte budget.
    fn install(&self, key: u128, table: Arc<FastMpcTable>) {
        let bytes = table.binary_size_bytes();
        let mut hot = self.hot.lock().unwrap_or_else(|p| p.into_inner());
        if hot.map.contains_key(&key) {
            return; // a racing epoch reinstalled it first
        }
        // Clock sweep: clear one referenced bit per pass, evict the first
        // unreferenced entry, until the newcomer fits (or the tier is
        // empty — one table may exceed the whole budget and still hosts).
        while !hot.map.is_empty()
            && hot.bytes.saturating_add(bytes) > self.cfg.hot_budget_bytes
        {
            let Some((victim_key, stamp)) = hot.queue.pop_front() else {
                break;
            };
            let second_chance = match hot.map.get(&victim_key) {
                // Stale ticket: the key was evicted (and possibly
                // reinstalled with a fresh stamp) since it was queued.
                None => continue,
                Some(e) if e.stamp != stamp => continue,
                Some(e) => e.referenced,
            };
            if second_chance {
                hot.map.get_mut(&victim_key).expect("checked above").referenced = false;
                hot.queue.push_back((victim_key, stamp));
                continue;
            }
            // Evict + spill while still holding the hot lock: readers
            // cannot observe the gap between tiers.
            let e = hot.map.remove(&victim_key).expect("victim resident");
            hot.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if !self.spill(victim_key, &e.table) {
                // No warm copy: this key's exactly-once epoch is over;
                // the next miss may regenerate.
                self.gates.remove(&victim_key);
            }
        }
        let stamp = hot.next_stamp;
        hot.next_stamp += 1;
        hot.queue.push_back((key, stamp));
        hot.bytes += bytes;
        hot.map.insert(
            key,
            HotEntry {
                table,
                bytes,
                referenced: false,
                stamp,
            },
        );
    }

    /// Writes the warm-tier spill file for `key` (write temp, rename).
    /// Returns whether a warm copy exists afterwards.
    fn spill(&self, key: u128, table: &FastMpcTable) -> bool {
        let Some(dir) = self.cfg.warm_dir.as_ref() else {
            return false;
        };
        let path = dir.join(format!("{key:032x}.fmpc"));
        if path.exists() {
            return true;
        }
        let tmp = dir.join(format!("{key:032x}.fmpc.tmp"));
        let written = std::fs::write(&tmp, table.to_bytes())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        if !written {
            let _ = std::fs::remove_file(&tmp);
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use abr_video::envivio_video;

    fn small_cfg(levels: usize) -> TableConfig {
        TableConfig::with_levels(levels, 30.0)
    }

    fn make_table(levels: usize) -> FastMpcTable {
        FastMpcTable::generate(&envivio_video(), 30.0, small_cfg(levels))
    }

    fn temp_warm_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("abr_store_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn default_store_behaves_like_the_unbounded_cache() {
        let video = envivio_video();
        let store = TableStore::new();
        let a = store.ensure(&video, 30.0, &small_cfg(6));
        let b = store.ensure(&video, 30.0, &small_cfg(6));
        let c = store.ensure(&video, 30.0, &small_cfg(7));
        assert_eq!(
            a.lookup(12.0, LevelIdx(2), 2200.0),
            b.lookup(12.0, LevelIdx(2), 2200.0)
        );
        assert!(!a.is_mapped() && !c.is_mapped());
        let stats = store.stats();
        assert_eq!(stats.hot_entries, 2);
        assert_eq!(stats.generates, 2);
        assert_eq!(stats.hot_hits, 1);
        assert_eq!(stats.warm_hits, 0);
        assert_eq!(stats.evictions, 0);
        assert!(stats.hot_bytes > 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn budget_evicts_and_warm_tier_serves_zero_copy_without_regeneration() {
        let dir = temp_warm_dir("warm");
        let one_table = make_table(6).binary_size_bytes();
        // Room for roughly two tables of this size.
        let store = TableStore::with_config(TableStoreConfig {
            hot_budget_bytes: one_table * 2 + one_table / 2,
            warm_dir: Some(dir.clone()),
        });
        let tables: Vec<FastMpcTable> = (0..4).map(|_| make_table(6)).collect();
        for (i, t) in tables.iter().enumerate() {
            let t = t.clone();
            store.ensure_with(i as u128, move || t);
        }
        let stats = store.stats();
        assert_eq!(stats.generates, 4);
        assert!(stats.evictions >= 1, "budget must force evictions");
        assert!(stats.hot_bytes <= one_table * 2 + one_table / 2);
        assert!(store.len() < 4);
        // The first-installed (coldest) key was evicted; it must come back
        // mapped, not regenerated.
        let evicted_key = (0..4)
            .find(|&i| store.hot_get(i as u128).is_none())
            .expect("something was evicted") as u128;
        let h = store.ensure_with(evicted_key, || panic!("warm hit must not regenerate"));
        assert!(h.is_mapped(), "evicted table served from the warm tier");
        assert_eq!(
            h.lookup(12.0, LevelIdx(2), 2200.0),
            tables[evicted_key as usize].lookup(12.0, LevelIdx(2), 2200.0),
            "mapped view decides identically to the original table"
        );
        let stats = store.stats();
        assert_eq!(stats.generates, 4, "no regeneration after eviction");
        assert_eq!(stats.warm_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_without_warm_dir_regenerates_exactly_once() {
        let one_table = make_table(6).binary_size_bytes();
        let store = TableStore::with_config(TableStoreConfig {
            hot_budget_bytes: one_table + one_table / 2,
            warm_dir: None,
        });
        let (t1, t2) = (make_table(6), make_table(7));
        store.ensure_with(1, || t1.clone());
        store.ensure_with(2, || t2.clone()); // evicts key 1
        assert_eq!(store.stats().evictions, 1);
        let regens = AtomicU64::new(0);
        let h = store.ensure_with(1, || {
            regens.fetch_add(1, Ordering::Relaxed);
            t1.clone()
        });
        assert!(!h.is_mapped());
        assert_eq!(regens.load(Ordering::Relaxed), 1, "fresh epoch regenerates once");
        assert_eq!(store.stats().generates, 3);
    }

    #[test]
    fn referenced_entries_survive_the_clock_sweep() {
        let one_table = make_table(6).binary_size_bytes();
        let store = TableStore::with_config(TableStoreConfig {
            hot_budget_bytes: one_table * 2 + one_table / 2,
            warm_dir: None,
        });
        let t = make_table(6);
        for key in [1u128, 2] {
            let t = t.clone();
            store.ensure_with(key, move || t);
        }
        // Touch key 1 so its referenced bit shields it from the hand.
        store.ensure_with(1, || panic!("hot"));
        let t3 = make_table(6);
        store.ensure_with(3, move || t3); // must evict key 2, not key 1
        assert!(store.hot_get(1).is_some(), "recently used key survives");
        assert!(store.hot_get(2).is_none(), "unreferenced key is the victim");
        assert!(store.hot_get(3).is_some());
    }

    #[test]
    fn miss_storm_generates_once_while_other_keys_proceed() {
        let store = Arc::new(TableStore::new());
        let runs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                let runs = Arc::clone(&runs);
                s.spawn(move || {
                    store.ensure_with(42, || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        make_table(6)
                    });
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "one generation fleet-wide");
        let stats = store.stats();
        assert_eq!(stats.generates, 1);
        assert_eq!(stats.hot_hits + stats.warm_hits, 7);
    }

    #[test]
    fn ensure_is_bit_identical_across_tiers() {
        let dir = temp_warm_dir("bitident");
        let one_table = make_table(8).binary_size_bytes();
        let store = TableStore::with_config(TableStoreConfig {
            hot_budget_bytes: one_table + one_table / 2,
            warm_dir: Some(dir.clone()),
        });
        let video = envivio_video();
        let fresh = FastMpcTable::generate(&video, 30.0, small_cfg(8));
        let hot = store.ensure(&video, 30.0, &small_cfg(8));
        // Push the first table out of the hot tier.
        let filler = make_table(9);
        store.ensure_with(999, move || filler);
        let warm = store.ensure(&video, 30.0, &small_cfg(8));
        assert!(warm.is_mapped());
        let cfg = small_cfg(8);
        for b in 0..cfg.buffer_bins.count {
            for p in 0..5 {
                for c in 0..cfg.throughput_bins.count {
                    let buffer = cfg.buffer_bins.centroid(b);
                    let thr = cfg.throughput_bins.centroid(c);
                    let want = fresh.lookup(buffer, LevelIdx(p), thr);
                    assert_eq!(hot.lookup(buffer, LevelIdx(p), thr), want);
                    assert_eq!(warm.lookup(buffer, LevelIdx(p), thr), want);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
