//! Compact binary serialization of [`FastMpcTable`] — the artifact a player
//! actually ships.
//!
//! JSON (see [`FastMpcTable::to_json`]) is convenient for inspection but
//! costs ~4x the bytes: every `u32` run offset prints as decimal text plus
//! punctuation. The binary codec writes the same information as fixed-width
//! little-endian fields behind a magic/version header, so the wire size is
//! within a small constant of [`FastMpcTable::rle_size_bytes`] — the Table 1
//! "run length coding" column is what goes over the network, not a JSON
//! blow-up of it.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "FMPC" | version u16 | buffer BinSpec | throughput BinSpec
//! | horizon u32 | horizon_slices u32
//! | lambda f64 | mu f64 | mu_s f64 | mu_event f64 | w_lat f64
//! | QualityFn (tag u8 + payload) | num_levels u32 | buffer_max_secs f64
//! | rle len u32 | run count u32 | starts [u32] | values [u8]
//! ```
//!
//! where a `BinSpec` is `count u32 | lo f64 | hi f64 | log u8`, and the
//! `QualityFn` tags are 0 = Identity, 1 = Log { r0, scale }, 2 = Saturating
//! { cap_kbps }, 3 = Table { knot count u32, (kbps f64, quality f64)* }.
//!
//! Decoding validates structure (magic, version, exact length) and
//! invariants (bin counts >= 1, run starts strictly increasing from 0,
//! decisions below `num_levels`, total length equal to the bin-grid size),
//! so [`FastMpcTable::from_bytes`] never yields a table whose `lookup`
//! could panic.

use crate::bins::BinSpec;
use crate::rle::Rle;
use crate::table::{FastMpcTable, TableConfig};
use abr_video::{QoeWeights, QualityFn};
use std::fmt;

/// Magic bytes opening every binary table.
const MAGIC: [u8; 4] = *b"FMPC";
/// Current format version. Version 2 added the live fields:
/// `horizon_slices` after the horizon and the `w_lat` QoE weight after
/// `mu_event`.
const VERSION: u16 = 2;

/// Why a byte buffer failed to decode as a [`FastMpcTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete, or carried
    /// trailing bytes past it.
    Truncated,
    /// The buffer does not start with the `FMPC` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The structure parsed but violates a table invariant.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated or trailing bytes present"),
            CodecError::BadMagic => write!(f, "not a FastMPC binary table (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Invalid(what) => write!(f, "invalid table: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian writer over a growing byte vector.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bins(&mut self, b: &BinSpec) {
        self.u32(b.count as u32);
        self.f64(b.lo);
        self.f64(b.hi);
        self.u8(b.log as u8);
    }

    fn quality(&mut self, q: &QualityFn) {
        match q {
            QualityFn::Identity => self.u8(0),
            QualityFn::Log { r0, scale } => {
                self.u8(1);
                self.f64(*r0);
                self.f64(*scale);
            }
            QualityFn::Saturating { cap_kbps } => {
                self.u8(2);
                self.f64(*cap_kbps);
            }
            QualityFn::Table { knots } => {
                self.u8(3);
                self.u32(knots.len() as u32);
                for &(kbps, quality) in knots {
                    self.f64(kbps);
                    self.f64(quality);
                }
            }
        }
    }
}

/// Cursor over the encoded bytes; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finite(&mut self, what: &'static str) -> Result<f64, CodecError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CodecError::Invalid(what))
        }
    }

    fn bins(&mut self) -> Result<BinSpec, CodecError> {
        let count = self.u32()? as usize;
        let lo = self.finite("bin edge not finite")?;
        let hi = self.finite("bin edge not finite")?;
        let log = match self.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid("bin spacing flag")),
        };
        if count < 1 || hi <= lo || (log && lo <= 0.0) {
            return Err(CodecError::Invalid("bin range"));
        }
        Ok(BinSpec { count, lo, hi, log })
    }

    fn quality(&mut self) -> Result<QualityFn, CodecError> {
        match self.u8()? {
            0 => Ok(QualityFn::Identity),
            1 => Ok(QualityFn::Log {
                r0: self.finite("quality parameter not finite")?,
                scale: self.finite("quality parameter not finite")?,
            }),
            2 => Ok(QualityFn::Saturating {
                cap_kbps: self.finite("quality parameter not finite")?,
            }),
            3 => {
                let n = self.u32()? as usize;
                let mut knots = Vec::with_capacity(n.min(self.buf.len() / 16));
                for _ in 0..n {
                    knots.push((self.f64()?, self.f64()?));
                }
                if !QualityFn::knots_valid(&knots) {
                    return Err(CodecError::Invalid("quality table knots"));
                }
                Ok(QualityFn::Table { knots })
            }
            _ => Err(CodecError::Invalid("quality function tag")),
        }
    }
}

/// Byte-offset layout of a validated `FMPC` buffer: everything
/// [`FastMpcTable::from_bytes`] would copy out, located in place instead.
///
/// Produced only by [`parse`], which runs the complete validation suite —
/// a `Layout` therefore certifies that `starts_off..values_off` holds
/// `runs` little-endian `u32` run starts (strictly increasing from 0, all
/// below `len`) and `values_off..values_off + runs` holds run values below
/// `num_levels`, so index arithmetic against these offsets cannot read out
/// of bounds or yield an out-of-ladder decision. This is the validated-
/// prefix invariant the zero-copy [`crate::TableView`] relies on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Layout {
    pub cfg: TableConfig,
    pub num_levels: usize,
    pub buffer_max_secs: f64,
    pub len: u32,
    pub runs: usize,
    pub starts_off: usize,
    pub values_off: usize,
}

/// Validates an encoded table and returns its [`Layout`]. This is *the*
/// decoder: [`FastMpcTable::from_bytes`] materializes vectors from the
/// layout, the zero-copy [`crate::TableView`] reads through it in place —
/// both accept and reject exactly the same byte strings by construction.
pub(crate) fn parse(bytes: &[u8]) -> Result<Layout, CodecError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let buffer_bins = r.bins()?;
    let throughput_bins = r.bins()?;
    let horizon = r.u32()? as usize;
    if horizon == 0 {
        return Err(CodecError::Invalid("horizon must be positive"));
    }
    let horizon_slices = r.u32()? as usize;
    if horizon_slices == 0 || horizon_slices > horizon {
        return Err(CodecError::Invalid("horizon slices out of range"));
    }
    let lambda = r.finite("QoE weight not finite")?;
    let mu = r.finite("QoE weight not finite")?;
    let mu_s = r.finite("QoE weight not finite")?;
    let mu_event = r.finite("QoE weight not finite")?;
    let w_lat = r.finite("QoE weight not finite")?;
    let quality = r.quality()?;
    let num_levels = r.u32()? as usize;
    if num_levels == 0 || num_levels > u8::MAX as usize {
        return Err(CodecError::Invalid("ladder size out of range"));
    }
    let buffer_max_secs = r.finite("buffer capacity not finite")?;
    if buffer_max_secs <= 0.0 {
        return Err(CodecError::Invalid("buffer capacity must be positive"));
    }
    let len = r.u32()?;
    let runs = r.u32()? as usize;
    let expected = buffer_bins
        .count
        .checked_mul(num_levels)
        .and_then(|n| n.checked_mul(throughput_bins.count))
        .and_then(|n| n.checked_mul(horizon_slices))
        .ok_or(CodecError::Invalid("table dimensions overflow"))?;
    if len as usize != expected {
        return Err(CodecError::Invalid("length does not match dimensions"));
    }
    if runs > len as usize || (len > 0 && runs == 0) {
        return Err(CodecError::Invalid("run count out of range"));
    }
    let starts_off = r.pos;
    let starts = r.take(runs.checked_mul(4).ok_or(CodecError::Truncated)?)?;
    let values_off = r.pos;
    let values = r.take(runs)?;
    if r.pos != bytes.len() {
        return Err(CodecError::Truncated);
    }
    let start_at =
        |i: usize| u32::from_le_bytes(starts[4 * i..4 * i + 4].try_into().unwrap());
    if runs > 0 && start_at(0) != 0 {
        return Err(CodecError::Invalid("first run must start at 0"));
    }
    if (1..runs).any(|i| start_at(i - 1) >= start_at(i)) {
        return Err(CodecError::Invalid("run starts must strictly increase"));
    }
    if runs > 0 && start_at(runs - 1) >= len {
        return Err(CodecError::Invalid("run starts past the end"));
    }
    if values.iter().any(|&v| v as usize >= num_levels) {
        return Err(CodecError::Invalid("decision exceeds ladder"));
    }
    Ok(Layout {
        cfg: TableConfig {
            buffer_bins,
            throughput_bins,
            horizon,
            horizon_slices,
            weights: QoeWeights {
                lambda,
                mu,
                mu_s,
                mu_event,
                w_lat,
                quality,
            },
        },
        num_levels,
        buffer_max_secs,
        len,
        runs,
        starts_off,
        values_off,
    })
}

impl FastMpcTable {
    /// Serializes to the compact binary format described in the
    /// [module docs](self).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u16(VERSION);
        w.bins(&self.cfg.buffer_bins);
        w.bins(&self.cfg.throughput_bins);
        w.u32(self.cfg.horizon as u32);
        w.u32(self.cfg.horizon_slices as u32);
        w.f64(self.cfg.weights.lambda);
        w.f64(self.cfg.weights.mu);
        w.f64(self.cfg.weights.mu_s);
        w.f64(self.cfg.weights.mu_event);
        w.f64(self.cfg.weights.w_lat);
        w.quality(&self.cfg.weights.quality);
        w.u32(self.num_levels as u32);
        w.f64(self.buffer_max_secs);
        let (starts, values, len) = self.decisions.parts();
        w.u32(len);
        w.u32(starts.len() as u32);
        for &s in starts {
            w.u32(s);
        }
        w.buf.extend_from_slice(values);
        w.buf
    }

    /// Size of the binary serialization in bytes, without materializing it.
    pub fn binary_size_bytes(&self) -> usize {
        let quality_payload = match &self.cfg.weights.quality {
            QualityFn::Identity => 0,
            QualityFn::Log { .. } => 16,
            QualityFn::Saturating { .. } => 8,
            QualityFn::Table { knots } => 4 + 16 * knots.len(),
        };
        // magic + version, two BinSpecs, horizon + slices, five weights,
        // quality tag, num_levels, buffer_max, rle len + run count, then
        // the runs.
        4 + 2
            + 2 * (4 + 8 + 8 + 1)
            + 4
            + 4
            + 5 * 8
            + 1
            + quality_payload
            + 4
            + 8
            + 4
            + 4
            + self.decisions.size_bytes()
    }

    /// Decodes a table produced by [`FastMpcTable::to_bytes`], validating
    /// every structural invariant (via [`parse`], shared with the
    /// zero-copy [`crate::TableView`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let l = parse(bytes)?;
        let starts = bytes[l.starts_off..l.values_off]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let values = bytes[l.values_off..l.values_off + l.runs].to_vec();
        Ok(Self {
            cfg: l.cfg,
            num_levels: l.num_levels,
            buffer_max_secs: l.buffer_max_secs,
            decisions: Rle::from_parts(starts, values, l.len),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::GenMode;
    use abr_video::{envivio_video, LevelIdx};

    fn table() -> FastMpcTable {
        FastMpcTable::generate_with(
            &envivio_video(),
            30.0,
            TableConfig::with_levels(12, 30.0),
            GenMode::RunAware,
        )
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let t = table();
        let bytes = t.to_bytes();
        let back = FastMpcTable::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(
            back.lookup(12.0, LevelIdx(2), 2200.0),
            t.lookup(12.0, LevelIdx(2), 2200.0)
        );
    }

    #[test]
    fn binary_size_is_exact_and_beats_json() {
        let t = table();
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.binary_size_bytes());
        // The binary form should stay close to the raw RLE payload, far
        // below the JSON rendering of the same table.
        assert!(bytes.len() < t.to_json().len() / 2);
        assert!(bytes.len() < t.rle_size_bytes() + 256);
    }

    #[test]
    fn nontrivial_quality_fns_round_trip() {
        let mut cfg = TableConfig::with_levels(6, 30.0);
        for q in [
            QualityFn::Log {
                r0: 200.0,
                scale: 80.0,
            },
            QualityFn::Saturating { cap_kbps: 1500.0 },
            QualityFn::Table {
                knots: vec![(350.0, 0.0), (1200.0, 2.0), (3000.0, 3.0)],
            },
        ] {
            cfg.weights.quality = q;
            let t = FastMpcTable::generate_with(
                &envivio_video(),
                30.0,
                cfg.clone(),
                GenMode::RunAware,
            );
            let back = FastMpcTable::from_bytes(&t.to_bytes()).unwrap();
            assert_eq!(t, back);
        }
    }

    #[test]
    fn sliced_live_table_round_trips() {
        let mut cfg = TableConfig::with_levels(8, 30.0).live_slices(3);
        cfg.weights.w_lat = 0.05;
        let t = FastMpcTable::generate_with(&envivio_video(), 30.0, cfg, GenMode::RunAware);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.binary_size_bytes());
        let back = FastMpcTable::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.config().horizon_slices, 3);
        assert_eq!(back.config().weights.w_lat, 0.05);
        for h_eff in 1..=5 {
            assert_eq!(
                back.lookup_live(5.0, LevelIdx(1), 1200.0, h_eff),
                t.lookup_live(5.0, LevelIdx(1), 1200.0, h_eff)
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = table().to_bytes();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(FastMpcTable::from_bytes(&wrong), Err(CodecError::BadMagic));
        bytes[4] = 99; // version low byte
        assert_eq!(
            FastMpcTable::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = table().to_bytes();
        for cut in [0, 3, 6, 20, bytes.len() - 1] {
            assert_eq!(
                FastMpcTable::from_bytes(&bytes[..cut]),
                Err(CodecError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(FastMpcTable::from_bytes(&padded), Err(CodecError::Truncated));
    }

    #[test]
    fn rejects_corrupted_decisions() {
        let t = table();
        let bytes = t.to_bytes();
        // The run values are the trailing bytes; point one past the ladder.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] = 200;
        assert_eq!(
            FastMpcTable::from_bytes(&corrupt),
            Err(CodecError::Invalid("decision exceeds ladder"))
        );
    }

    #[test]
    fn errors_format_meaningfully() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(CodecError::Invalid("x").to_string().contains('x'));
    }
}
