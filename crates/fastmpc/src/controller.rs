//! The online FastMPC controller: a table lookup per decision.

use crate::store::TableHandle;
use crate::table::{DecisionBatch, FastMpcTable};
use abr_core::{BitrateController, ControllerContext, Decision};
use std::sync::Arc;

/// FastMPC bitrate controller — wraps a pre-generated decision table.
///
/// The table is shared via a [`TableHandle`], mirroring deployment: one
/// table artifact serves every player session, whether it lives in memory
/// (hot tier) or is mmap'd zero-copy from disk (warm tier — the tiers
/// decide identically, bit for bit). The optional robust mode feeds the
/// lookup the RobustMPC throughput lower bound instead of the raw
/// prediction — because RobustMPC *is* regular MPC on the lower bound
/// (Theorem 1), the same table serves both.
#[derive(Debug, Clone)]
pub struct FastMpc {
    table: TableHandle,
    robust: bool,
    name: &'static str,
    /// Columnar scratch for `decide_batch`; retained across batches so the
    /// steady state allocates nothing.
    batch: DecisionBatch,
}

impl FastMpc {
    /// FastMPC with the raw throughput prediction (name "FastMPC").
    pub fn new(table: Arc<FastMpcTable>) -> Self {
        Self::from_handle(TableHandle::Owned(table))
    }

    /// FastMPC driven by the robust lower bound (name "RobustFastMPC").
    pub fn robust(table: Arc<FastMpcTable>) -> Self {
        Self::robust_handle(TableHandle::Owned(table))
    }

    /// [`new`](Self::new) over a handle from either tier of a
    /// [`TableStore`](crate::TableStore).
    pub fn from_handle(table: TableHandle) -> Self {
        Self {
            table,
            robust: false,
            name: "FastMPC",
            batch: DecisionBatch::new(),
        }
    }

    /// [`robust`](Self::robust) over a handle from either tier.
    pub fn robust_handle(table: TableHandle) -> Self {
        Self {
            table,
            robust: true,
            name: "RobustFastMPC",
            batch: DecisionBatch::new(),
        }
    }

    /// Overrides the display name.
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The underlying table handle.
    pub fn handle(&self) -> &TableHandle {
        &self.table
    }
}

impl BitrateController for FastMpc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        debug_assert_eq!(
            self.table.config().buffer_bins.hi, ctx.buffer_max_secs,
            "table generated for a different buffer capacity"
        );
        let throughput = if self.robust {
            ctx.robust_or_prediction()
        } else {
            ctx.prediction_or_floor()
        };
        let prev = ctx
            .prev_level
            .unwrap_or_else(|| ctx.video.ladder().lowest());
        if let Some(live) = &ctx.live {
            // Live session: pick the slice enumerated for the
            // availability-truncated horizon. The table approximates the
            // live solver by its truncated-horizon VOD optimum (no in-plan
            // latency term) — the latency penalty still lands in the
            // session QoE accounting.
            let h_eff = abr_core::mpc::live_effective_horizon(
                self.table.config().horizon,
                ctx.video.chunk_secs(),
                live.release_in_secs,
                ctx.buffer_secs,
            );
            return Decision::level(self.table.lookup_live(ctx.buffer_secs, prev, throughput, h_eff));
        }
        Decision::level(self.table.lookup(ctx.buffer_secs, prev, throughput))
    }

    fn decide_batch(&mut self, ctxs: &[ControllerContext<'_>], out: &mut Vec<Decision>) {
        // Live contexts carry a per-session slice dimension the columnar
        // kernel does not model; resolve them scalar (identical result,
        // just unamortized).
        if ctxs.iter().any(|c| c.live.is_some()) {
            out.clear();
            out.reserve(ctxs.len());
            for ctx in ctxs {
                out.push(self.decide(ctx));
            }
            return;
        }
        // Columnarize: exactly the per-context state mapping of `decide`
        // (robust-vs-raw throughput, first-chunk fallback), then one
        // bin-grouped table pass instead of N binary searches.
        self.batch.clear();
        for ctx in ctxs {
            debug_assert_eq!(
                self.table.config().buffer_bins.hi, ctx.buffer_max_secs,
                "table generated for a different buffer capacity"
            );
            let throughput = if self.robust {
                ctx.robust_or_prediction()
            } else {
                ctx.prediction_or_floor()
            };
            let prev = ctx
                .prev_level
                .unwrap_or_else(|| ctx.video.ladder().lowest());
            self.batch.push(ctx.chunk_index, ctx.buffer_secs, prev, throughput);
        }
        self.table.decide_batch(&mut self.batch);
        out.clear();
        out.reserve(ctxs.len());
        for i in 0..self.batch.len() {
            out.push(Decision::level(self.batch.level(i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use abr_predictor::HarmonicMean;
    use abr_sim::{run_session, SimConfig};
    use abr_trace::{Dataset, Trace};
    use abr_video::{envivio_video, LevelIdx};

    fn table(levels: usize) -> Arc<FastMpcTable> {
        let video = envivio_video();
        Arc::new(FastMpcTable::generate(
            &video,
            30.0,
            TableConfig::with_levels(levels, 30.0),
        ))
    }

    #[test]
    fn completes_sessions_on_every_dataset() {
        let video = envivio_video();
        let t = table(20);
        for ds in Dataset::ALL {
            for trace in ds.generate(5, 2) {
                let mut c = FastMpc::new(t.clone());
                let r = run_session(
                    &mut c,
                    HarmonicMean::paper_default(),
                    &trace,
                    &video,
                    &SimConfig::paper_default(),
                );
                assert_eq!(r.records.len(), 65);
                assert!(r.qoe.qoe.is_finite());
            }
        }
    }

    #[test]
    fn tracks_exact_mpc_closely_with_fine_bins() {
        // Figure 12a's premise: with enough discretization levels FastMPC
        // approaches exact MPC. On a benign trace their session QoE should
        // be near-identical with 100+ bins.
        let video = envivio_video();
        let trace = Trace::new(vec![(30.0, 2200.0), (30.0, 1100.0), (30.0, 1800.0)]).unwrap();
        let cfg = SimConfig::paper_default();
        let mut exact = abr_core::Mpc::paper_default();
        let exact_r = run_session(
            &mut exact,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        let mut fast = FastMpc::new(table(100));
        let fast_r = run_session(
            &mut fast,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        // Figure 12a: FastMPC at 100 levels reaches ~90 % of the exact
        // optimizer's QoE — bin-boundary quantization costs the rest.
        let gap = (exact_r.qoe.qoe - fast_r.qoe.qoe).abs() / exact_r.qoe.qoe.abs();
        assert!(
            gap < 0.15,
            "FastMPC(100) {} vs exact {} (gap {gap})",
            fast_r.qoe.qoe,
            exact_r.qoe.qoe
        );
    }

    #[test]
    fn coarser_tables_do_no_better() {
        // Also Figure 12a: 5 bins should not beat 100 bins (averaged over
        // a few traces to avoid single-trace luck).
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let coarse_t = table(5);
        let fine_t = table(100);
        let mut coarse_total = 0.0;
        let mut fine_total = 0.0;
        for trace in Dataset::Fcc.generate(21, 8) {
            let mut coarse = FastMpc::new(coarse_t.clone());
            coarse_total += run_session(
                &mut coarse,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            )
            .qoe
            .qoe;
            let mut fine = FastMpc::new(fine_t.clone());
            fine_total += run_session(
                &mut fine,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            )
            .qoe
            .qoe;
        }
        assert!(
            fine_total >= coarse_total,
            "fine {fine_total} vs coarse {coarse_total}"
        );
    }

    #[test]
    fn robust_variant_never_more_aggressive() {
        let video = envivio_video();
        let t = table(30);
        let ctx = |lower: Option<f64>| abr_core::ControllerContext {
            chunk_index: 5,
            buffer_secs: 10.0,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: Some(2500.0),
            robust_lower_kbps: lower,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video: &video,
            buffer_max_secs: 30.0,
            live: None,
        };
        let mut plain = FastMpc::new(t.clone());
        let mut robust = FastMpc::robust(t);
        let a = plain.decide(&ctx(Some(900.0))).level;
        let b = robust.decide(&ctx(Some(900.0))).level;
        assert!(b <= a, "robust {b:?} vs plain {a:?}");
    }

    #[test]
    fn names() {
        let t = table(5);
        assert_eq!(FastMpc::new(t.clone()).name(), "FastMPC");
        assert_eq!(FastMpc::robust(t.clone()).name(), "RobustFastMPC");
        assert_eq!(FastMpc::new(t).named("X").name(), "X");
    }
}
