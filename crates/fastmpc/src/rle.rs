//! Run-length encoding of the decision vector with binary-search retrieval
//! (Section 5.2, "table compression").
//!
//! The offline table has massive structure — long runs of identical optimal
//! decisions across neighbouring scenarios — so a lossless run-length code
//! shrinks it dramatically (the paper reports 60 kB at 100 bins, 82 %
//! reduction at 500 bins). Retrieval stays `O(log runs)` via binary search
//! over run start offsets, exactly the paper's online mechanism.

use serde::{Deserialize, Serialize};

/// A run-length-encoded byte vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rle {
    /// Start offset of each run (ascending; first is 0 when non-empty).
    starts: Vec<u32>,
    /// Value of each run.
    values: Vec<u8>,
    /// Total decoded length.
    len: u32,
}

impl Rle {
    /// Encodes a byte slice. Lengths above `u32::MAX` are rejected (a
    /// FastMPC table is orders of magnitude smaller).
    pub fn encode(data: &[u8]) -> Self {
        assert!(
            u32::try_from(data.len()).is_ok(),
            "vector too long for RLE offsets"
        );
        let mut starts = Vec::new();
        let mut values = Vec::new();
        let mut prev: Option<u8> = None;
        for (i, &b) in data.iter().enumerate() {
            if prev != Some(b) {
                starts.push(i as u32);
                values.push(b);
                prev = Some(b);
            }
        }
        Self {
            starts,
            values,
            len: data.len() as u32,
        }
    }

    /// Decodes back to the full byte vector.
    pub fn decode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len as usize);
        for (i, &start) in self.starts.iter().enumerate() {
            let end = self
                .starts
                .get(i + 1)
                .copied()
                .unwrap_or(self.len);
            out.resize(out.len() + (end - start) as usize, self.values[i]);
        }
        out
    }

    /// Random access without decoding: binary search over run starts.
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> u8 {
        assert!((idx as u64) < self.len as u64, "index {idx} out of range");
        let run = self.starts.partition_point(|&s| s as usize <= idx) - 1;
        self.values[run]
    }

    /// Batched random access: resolves every probe in `indices`, writing
    /// `out[i] = get(indices[i])` positionally. `order` must be a
    /// permutation of `0..indices.len()` that visits the probes in
    /// ascending index order (ties in any order) — with the probes sorted,
    /// one forward cursor over the run starts resolves the whole batch.
    /// The cursor advances by galloping (doubling steps, then a binary
    /// search inside the bracketed window), so a probe in the next run
    /// over costs O(1), a probe far downstream costs O(log distance), and
    /// the batch never degrades to the O(runs) linear walk a sparse batch
    /// over a long table would otherwise pay.
    ///
    /// The result is correct for *any* permutation: a probe that steps
    /// backwards merely falls back to a binary search to re-seat the run
    /// cursor. Panics if any index is out of range or the slice lengths
    /// disagree.
    pub fn get_sorted_by(&self, indices: &[u32], order: &[u32], out: &mut [u8]) {
        assert_eq!(indices.len(), order.len(), "order must cover every probe");
        assert_eq!(indices.len(), out.len(), "out must cover every probe");
        let mut run = 0usize;
        for &pos in order {
            let idx = indices[pos as usize];
            assert!((idx as u64) < self.len as u64, "index {idx} out of range");
            if self.starts[run] > idx {
                // Out-of-order probe: re-seat the cursor the scalar way.
                run = self.starts.partition_point(|&s| s <= idx) - 1;
            } else {
                // Gallop: double the step until the next start overshoots,
                // then binary-search the bracketed window [lo, lo + step).
                let mut lo = run;
                let mut step = 1usize;
                while lo + step < self.starts.len() && self.starts[lo + step] <= idx {
                    lo += step;
                    step <<= 1;
                }
                let end = (lo + step).min(self.starts.len());
                // starts[lo] <= idx, and starts[end..] (if any) > idx.
                run = lo + self.starts[lo..end].partition_point(|&s| s <= idx) - 1;
            }
            out[pos as usize] = self.values[run];
        }
    }

    /// Decoded length.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the decoded vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.values.len()
    }

    /// In-memory size of the encoded form: 4 bytes per run offset plus
    /// 1 byte per run value (the Table 1 "run length coding" column).
    pub fn size_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>() + self.values.len()
    }

    /// Raw parts for the binary codec: `(run starts, run values, length)`.
    pub(crate) fn parts(&self) -> (&[u32], &[u8], u32) {
        (&self.starts, &self.values, self.len)
    }

    /// Reassembles from raw parts. The caller (the binary codec) is
    /// responsible for having validated the invariants: equally many starts
    /// and values, starts strictly increasing from 0, all below `len`.
    pub(crate) fn from_parts(starts: Vec<u32>, values: Vec<u8>, len: u32) -> Self {
        debug_assert_eq!(starts.len(), values.len());
        debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(len == 0 || (starts.first() == Some(&0)));
        Self {
            starts,
            values,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_round_trip() {
        let r = Rle::encode(&[]);
        assert!(r.is_empty());
        assert_eq!(r.decode(), Vec::<u8>::new());
        assert_eq!(r.runs(), 0);
        assert_eq!(r.size_bytes(), 0);
    }

    #[test]
    fn single_value() {
        let r = Rle::encode(&[7]);
        assert_eq!(r.decode(), vec![7]);
        assert_eq!(r.get(0), 7);
        assert_eq!(r.runs(), 1);
    }

    #[test]
    fn long_uniform_run_compresses_hard() {
        let data = vec![3u8; 50_000];
        let r = Rle::encode(&data);
        assert_eq!(r.runs(), 1);
        assert_eq!(r.size_bytes(), 5);
        assert_eq!(r.decode(), data);
        assert_eq!(r.get(49_999), 3);
    }

    #[test]
    fn alternating_does_not_compress() {
        let data: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let r = Rle::encode(&data);
        assert_eq!(r.runs(), 100);
        assert!(r.size_bytes() > data.len());
        assert_eq!(r.decode(), data);
    }

    #[test]
    fn get_at_run_boundaries() {
        let data = [1u8, 1, 1, 2, 2, 3];
        let r = Rle::encode(&data);
        assert_eq!(r.get(0), 1);
        assert_eq!(r.get(2), 1);
        assert_eq!(r.get(3), 2);
        assert_eq!(r.get(4), 2);
        assert_eq!(r.get(5), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        Rle::encode(&[1, 2]).get(2);
    }

    #[test]
    fn serde_round_trip() {
        let r = Rle::encode(&[5, 5, 9, 9, 9, 1]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Rle = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    proptest! {
        /// decode(encode(x)) == x.
        #[test]
        fn round_trip(data in proptest::collection::vec(0u8..5, 0..2000)) {
            let r = Rle::encode(&data);
            prop_assert_eq!(r.decode(), data);
        }

        /// get(i) equals the original element for every index.
        #[test]
        fn random_access_matches(data in proptest::collection::vec(0u8..5, 1..500)) {
            let r = Rle::encode(&data);
            for (i, &b) in data.iter().enumerate() {
                prop_assert_eq!(r.get(i), b);
            }
        }

        /// Run count never exceeds the data length, and size never exceeds
        /// 5x the run count.
        #[test]
        fn size_accounting(data in proptest::collection::vec(0u8..5, 0..500)) {
            let r = Rle::encode(&data);
            prop_assert!(r.runs() <= data.len());
            prop_assert_eq!(r.size_bytes(), r.runs() * 5);
        }

        /// The forward-walk batch accessor equals `get` probe for probe,
        /// whether the caller's order is the required ascending one or an
        /// arbitrary (adversarial) permutation.
        #[test]
        fn get_sorted_by_matches_get(
            data in proptest::collection::vec(0u8..5, 1..500),
            probes in proptest::collection::vec(any::<proptest::sample::Index>(), 0..64),
            shuffle in any::<bool>(),
        ) {
            let r = Rle::encode(&data);
            let indices: Vec<u32> =
                probes.iter().map(|p| p.index(data.len()) as u32).collect();
            let mut order: Vec<u32> = (0..indices.len() as u32).collect();
            if shuffle {
                // Adversarial order: descending indices force the cursor to
                // re-seat on every step.
                order.sort_unstable_by_key(|&i| std::cmp::Reverse(indices[i as usize]));
            } else {
                order.sort_unstable_by_key(|&i| indices[i as usize]);
            }
            let mut out = vec![0u8; indices.len()];
            r.get_sorted_by(&indices, &order, &mut out);
            for (i, &idx) in indices.iter().enumerate() {
                prop_assert_eq!(out[i], r.get(idx as usize));
            }
        }
    }
}
