//! The buffer-based (BB) baseline of Huang et al. (SIGCOMM 2014), as the
//! paper configures it: "bitrate `R_k` is chosen to be the maximum available
//! bitrate which is less than `r_k = f(B_k)` with reservoir `r = 5 s` and
//! cushion `c = 10 s`" (Section 7.1.2).
//!
//! The rate map `f` is the canonical piecewise-linear shape: pinned at
//! `R_min` while the buffer is inside the reservoir, rising linearly to
//! `R_max` across the cushion, and pinned at `R_max` above it. Throughput
//! information is deliberately ignored — BB is the pure "A2" algorithm of
//! Figure 4.
//!
//! The default follows the paper's configuration literally: the memoryless
//! map, re-evaluated every chunk. [`BufferBased::bba0`] adds the switching
//! band from Huang et al.'s full BBA-0 design (hold `R_cur` until `f(B)`
//! clears the adjacent levels' rates), which eliminates boundary
//! oscillation at the cost of reacting later to fades — on the volatile
//! cellular traces the memoryless map's eagerness to downshift is actually
//! protective, and it is the variant that reproduces the paper's Figure 8b
//! BB numbers. The `hysteresis_reduces_switching_on_a_sawtooth` test and
//! the robust-bound ablation document the trade-off.

use abr_core::{BitrateController, ControllerContext, Decision};
use abr_video::LevelIdx;

/// Buffer-based bitrate selection.
#[derive(Debug, Clone)]
pub struct BufferBased {
    /// Reservoir `r`: below this buffer level, stream at `R_min` (seconds).
    pub reservoir_secs: f64,
    /// Cushion `c`: the buffer span over which the rate map climbs from
    /// `R_min` to `R_max` (seconds).
    pub cushion_secs: f64,
    /// Apply BBA-0's switching band (default true).
    pub hysteresis: bool,
    current: Option<LevelIdx>,
}

impl BufferBased {
    /// The paper's configuration: reservoir 5 s, cushion 10 s, memoryless
    /// map (the literal Section 7.1.2 description).
    pub fn paper_default() -> Self {
        Self::new(5.0, 10.0)
    }

    /// BB with custom reservoir/cushion (both positive), memoryless map.
    pub fn new(reservoir_secs: f64, cushion_secs: f64) -> Self {
        assert!(
            reservoir_secs >= 0.0 && cushion_secs > 0.0,
            "reservoir must be non-negative and cushion positive"
        );
        Self {
            reservoir_secs,
            cushion_secs,
            hysteresis: false,
            current: None,
        }
    }

    /// Huang et al.'s full BBA-0: the rate map plus the switching band
    /// (hold until `f(B)` crosses an adjacent level's rate).
    pub fn bba0(reservoir_secs: f64, cushion_secs: f64) -> Self {
        Self {
            hysteresis: true,
            ..Self::new(reservoir_secs, cushion_secs)
        }
    }

    /// The rate map `f(B)` in kbps for a ladder spanning
    /// `[min_kbps, max_kbps]`.
    pub fn rate_map(&self, buffer_secs: f64, min_kbps: f64, max_kbps: f64) -> f64 {
        if buffer_secs <= self.reservoir_secs {
            min_kbps
        } else if buffer_secs >= self.reservoir_secs + self.cushion_secs {
            max_kbps
        } else {
            let frac = (buffer_secs - self.reservoir_secs) / self.cushion_secs;
            min_kbps + frac * (max_kbps - min_kbps)
        }
    }
}

impl BitrateController for BufferBased {
    fn name(&self) -> &'static str {
        "BB"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let ladder = ctx.video.ladder();
        let target = self.rate_map(ctx.buffer_secs, ladder.min_kbps(), ladder.max_kbps());
        let mapped = ladder.max_level_at_most(target);
        let chosen = if !self.hysteresis {
            mapped
        } else {
            let cur = self.current.or(ctx.prev_level);
            match cur {
                None => mapped,
                Some(cur) => {
                    // BBA-0's band: holding R_cur, switch up only when f(B)
                    // clears the next level's rate (R+), down only when it
                    // falls to the next level below (R−). Oscillation of
                    // f(B) anywhere inside (R−, R+) changes nothing.
                    let up = ladder.up(cur);
                    let down = ladder.down(cur);
                    if up != cur && target >= ladder.kbps(up) {
                        mapped // f(B) >= R+: jump to what the map allows
                    } else if down != cur && target <= ladder.kbps(down) {
                        mapped // f(B) <= R-: fall to what the map allows
                    } else {
                        cur // inside the band: hold
                    }
                }
            }
        };
        self.current = Some(chosen);
        Decision::level(chosen)
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Video};
    use proptest::prelude::*;

    fn ctx(video: &Video, buffer: f64) -> ControllerContext<'_> {
        ControllerContext {
            chunk_index: 10,
            buffer_secs: buffer,
            prev_level: None,
            prediction_kbps: Some(9999.0), // must be ignored
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn reservoir_pins_to_min() {
        let v = envivio_video();
        let mut bb = BufferBased::paper_default();
        assert_eq!(bb.decide(&ctx(&v, 0.0)).level, LevelIdx(0));
        bb.reset();
        assert_eq!(bb.decide(&ctx(&v, 5.0)).level, LevelIdx(0));
    }

    #[test]
    fn above_cushion_pins_to_max() {
        let v = envivio_video();
        let mut bb = BufferBased::paper_default();
        assert_eq!(bb.decide(&ctx(&v, 15.0)).level, LevelIdx(4));
        bb.reset();
        assert_eq!(bb.decide(&ctx(&v, 30.0)).level, LevelIdx(4));
    }

    #[test]
    fn cushion_interpolates_linearly() {
        let bb = BufferBased::paper_default();
        // Midpoint of the cushion: (350 + 3000)/2 = 1675.
        let mid = bb.rate_map(10.0, 350.0, 3000.0);
        assert!((mid - 1675.0).abs() < 1e-9);
        let v = envivio_video();
        let mut c = BufferBased::paper_default();
        // First decision (no held rate): 1675 kbps budget -> 1000 kbps.
        assert_eq!(c.decide(&ctx(&v, 10.0)).level, LevelIdx(2));
    }

    #[test]
    fn hysteresis_holds_inside_the_band() {
        let v = envivio_video();
        let mut bb = BufferBased::bba0(5.0, 10.0);
        // Establish 1000 kbps at buffer 10 (f = 1675).
        assert_eq!(bb.decide(&ctx(&v, 10.0)).level, LevelIdx(2));
        // Buffer wiggles: f(11.0) = 1940 < R+ = 2000 -> hold.
        assert_eq!(bb.decide(&ctx(&v, 11.0)).level, LevelIdx(2));
        // f(11.3) = 2019 >= 2000 -> step up to 2000.
        assert_eq!(bb.decide(&ctx(&v, 11.3)).level, LevelIdx(3));
        // f(10.5) = 1808: inside (R- = 1000, R+ = 3000) -> hold at 2000.
        assert_eq!(bb.decide(&ctx(&v, 10.5)).level, LevelIdx(3));
        // f(7.0) = 880 <= R- = 1000 -> fall to the map (600 kbps).
        assert_eq!(bb.decide(&ctx(&v, 7.0)).level, LevelIdx(1));
    }

    #[test]
    fn memoryless_variant_tracks_the_map_every_chunk() {
        let v = envivio_video();
        let mut bb = BufferBased::new(5.0, 10.0);
        assert_eq!(bb.decide(&ctx(&v, 10.0)).level, LevelIdx(2));
        assert_eq!(bb.decide(&ctx(&v, 11.3)).level, LevelIdx(3));
        assert_eq!(bb.decide(&ctx(&v, 10.0)).level, LevelIdx(2));
    }

    #[test]
    fn hysteresis_reduces_switching_on_a_sawtooth() {
        let v = envivio_video();
        // A buffer sawtooth crossing the 2000 kbps boundary every step.
        let buffers = [11.0, 11.4, 11.0, 11.4, 11.0, 11.4, 11.0, 11.4];
        let count_switches = |mut bb: BufferBased| -> usize {
            let mut prev = None;
            let mut switches = 0;
            for &b in &buffers {
                let l = bb.decide(&ctx(&v, b)).level;
                if prev.is_some() && prev != Some(l) {
                    switches += 1;
                }
                prev = Some(l);
            }
            switches
        };
        let with = count_switches(BufferBased::bba0(5.0, 10.0));
        let without = count_switches(BufferBased::new(5.0, 10.0));
        assert!(with < without, "hysteresis {with} vs memoryless {without}");
        assert!(without >= 6, "the sawtooth should thrash the memoryless map");
    }

    #[test]
    fn ignores_throughput_prediction() {
        let v = envivio_video();
        let mut bb = BufferBased::paper_default();
        let mut starved = ctx(&v, 2.0);
        starved.prediction_kbps = Some(100_000.0);
        assert_eq!(bb.decide(&starved).level, LevelIdx(0));
    }

    #[test]
    fn reset_forgets_held_rate() {
        let v = envivio_video();
        let mut bb = BufferBased::paper_default();
        assert_eq!(bb.decide(&ctx(&v, 30.0)).level, LevelIdx(4));
        bb.reset();
        assert_eq!(bb.decide(&ctx(&v, 0.0)).level, LevelIdx(0));
    }

    #[test]
    #[should_panic(expected = "cushion")]
    fn rejects_zero_cushion() {
        let _ = BufferBased::new(5.0, 0.0);
    }

    proptest! {
        /// The rate map is monotone in buffer occupancy and bounded by the
        /// ladder range.
        #[test]
        fn rate_map_monotone_and_bounded(
            b in 0.0f64..30.0,
            extra in 0.0f64..5.0,
        ) {
            let bb = BufferBased::paper_default();
            let lo = bb.rate_map(b, 350.0, 3000.0);
            let hi = bb.rate_map(b + extra, 350.0, 3000.0);
            prop_assert!(hi >= lo - 1e-9);
            prop_assert!((350.0..=3000.0).contains(&lo));
        }

        /// A fresh BB's first decision never exceeds what the rate map
        /// allows.
        #[test]
        fn first_level_respects_rate_map(b in 0.0f64..30.0) {
            let v = envivio_video();
            let mut bb = BufferBased::paper_default();
            let level = bb.decide(&ctx(&v, b)).level;
            let budget = bb.rate_map(b, 350.0, 3000.0);
            let kbps = v.ladder().kbps(level);
            prop_assert!(kbps <= budget + 1e-9 || level == LevelIdx(0));
        }

        /// With hysteresis, consecutive decisions move at most as far as
        /// the memoryless map would, and holding is always within the band.
        #[test]
        fn hysteresis_never_exceeds_map_by_more_than_one_band(
            b1 in 5.0f64..30.0,
            b2 in 5.0f64..30.0,
        ) {
            let v = envivio_video();
            let mut bb = BufferBased::bba0(5.0, 10.0);
            let l1 = bb.decide(&ctx(&v, b1)).level;
            let l2 = bb.decide(&ctx(&v, b2)).level;
            // The held level never exceeds the map of the *higher* buffer.
            let map_hi = v.ladder().max_level_at_most(
                bb.rate_map(b1.max(b2), 350.0, 3000.0));
            prop_assert!(l1 <= map_hi);
            prop_assert!(l2.get() <= map_hi.get() + 1);
        }
    }
}
