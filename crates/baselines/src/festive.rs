//! FESTIVE (Jiang et al., CoNEXT 2012), configured as in Section 7.1.2 of
//! the paper:
//!
//! * efficiency score of a candidate bitrate `b`:
//!   `|b / (p · Ĉ) − 1|` with `p = 1` and `Ĉ` the harmonic mean of the past
//!   5 chunks (supplied by the driver);
//! * stability score: `2^n + s(b)` where `n` is the number of bitrate
//!   switches in the past 5 chunks and `s(b) = 1` if `b` differs from the
//!   current bitrate (a candidate switch counts against itself);
//! * the bitrate minimizes `stability + α · efficiency` with `α = 12`;
//! * switching is **stepwise**: the candidate set is the current level and
//!   its immediate neighbours (FESTIVE's gradual switching), and an
//!   up-switch is only permitted after the player has stayed at the current
//!   level for a number of chunks (delayed update — FESTIVE's guard against
//!   bitrate oscillation);
//! * no randomized chunk scheduling and no fairness term — the paper drops
//!   both for the single-player setting.

use abr_core::{BitrateController, ControllerContext, Decision};
use abr_video::LevelIdx;
use std::collections::VecDeque;

/// The FESTIVE controller.
#[derive(Debug, Clone)]
pub struct Festive {
    /// Weight of the efficiency score (the paper uses `α = 12`).
    pub alpha: f64,
    /// Safety factor on the prediction (`p = 1` in the paper).
    pub p: f64,
    /// Window (in chunks) over which switches are counted.
    pub switch_window: usize,
    /// Chunks the player must stay at a level before switching up.
    pub up_delay_chunks: usize,
    /// Recent decisions (for switch counting).
    history: VecDeque<LevelIdx>,
    /// Chunks spent at the current level.
    dwell: usize,
}

impl Festive {
    /// The paper's configuration: `α = 12`, `p = 1`, 5-chunk window.
    pub fn paper_default() -> Self {
        Self::new(12.0, 1.0, 5, 1)
    }

    /// Custom FESTIVE parameters.
    pub fn new(alpha: f64, p: f64, switch_window: usize, up_delay_chunks: usize) -> Self {
        assert!(alpha >= 0.0 && p > 0.0 && switch_window > 0);
        Self {
            alpha,
            p,
            switch_window,
            up_delay_chunks,
            history: VecDeque::with_capacity(switch_window + 1),
            dwell: 0,
        }
    }

    /// Number of switches among the recorded recent decisions.
    fn recent_switches(&self) -> u32 {
        self.history
            .iter()
            .zip(self.history.iter().skip(1))
            .filter(|(a, b)| a != b)
            .count() as u32
    }

    /// Efficiency score of a candidate bitrate: `|b / min(p·Ĉ, b_ref) − 1|`
    /// as in the FESTIVE paper — the denominator is capped at the reference
    /// bitrate so the reference itself scores 0 whenever bandwidth covers it.
    fn efficiency(&self, kbps: f64, prediction_kbps: f64, ref_kbps: f64) -> f64 {
        (kbps / (self.p * prediction_kbps).min(ref_kbps) - 1.0).abs()
    }

    /// Stability score of a candidate level given the current one.
    fn stability(&self, candidate: LevelIdx, current: LevelIdx) -> f64 {
        let n = self.recent_switches();
        let switch_term = if candidate != current { 1.0 } else { 0.0 };
        (2.0f64).powi(n as i32) + switch_term
    }

    fn record(&mut self, level: LevelIdx) {
        if self.history.back() == Some(&level) {
            self.dwell += 1;
        } else {
            self.dwell = 0;
        }
        if self.history.len() > self.switch_window {
            self.history.pop_front();
        }
        self.history.push_back(level);
    }
}

impl BitrateController for Festive {
    fn name(&self) -> &'static str {
        "FESTIVE"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let ladder = ctx.video.ladder();
        let prediction = ctx.prediction_or_floor();
        let current = ctx
            .prev_level
            .or_else(|| self.history.back().copied())
            .unwrap_or_else(|| ladder.lowest());

        // Delayed gradual update: the reference bitrate moves one step from
        // the current level toward the target (highest level under `p·Ĉ`);
        // up-moves additionally wait out the dwell period.
        let target = ladder.max_level_at_most(self.p * prediction);
        let reference = if target > current && self.dwell >= self.up_delay_chunks {
            ladder.up(current)
        } else if target < current {
            ladder.down(current)
        } else {
            current
        };

        // Stability/efficiency tradeoff between staying and the reference.
        let ref_kbps = ladder.kbps(reference);
        let score = |cand: LevelIdx| {
            self.stability(cand, current)
                + self.alpha * self.efficiency(ladder.kbps(cand), prediction, ref_kbps)
        };
        let best = if score(reference) < score(current) {
            reference
        } else {
            current
        };
        self.record(best);
        Decision::level(best)
    }

    fn reset(&mut self) {
        self.history.clear();
        self.dwell = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Video};

    fn ctx<'a>(
        video: &'a Video,
        prediction: Option<f64>,
        prev: Option<LevelIdx>,
    ) -> ControllerContext<'a> {
        ControllerContext {
            chunk_index: 10,
            buffer_secs: 15.0,
            prev_level: prev,
            prediction_kbps: prediction,
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn starts_at_lowest_without_history() {
        let v = envivio_video();
        let mut f = Festive::paper_default();
        let d = f.decide(&ctx(&v, None, None));
        assert_eq!(d.level, LevelIdx(0));
    }

    #[test]
    fn switches_up_one_step_at_a_time() {
        let v = envivio_video();
        let mut f = Festive::paper_default();
        // Abundant throughput, but FESTIVE climbs gradually.
        let mut level = LevelIdx(0);
        let mut seen = vec![level];
        for _ in 0..12 {
            let d = f.decide(&ctx(&v, Some(10_000.0), Some(level)));
            assert!(
                d.level.get() <= level.get() + 1,
                "jumped more than one step: {level:?} -> {:?}",
                d.level
            );
            level = d.level;
            seen.push(level);
        }
        assert_eq!(level, LevelIdx(4), "should eventually reach the top: {seen:?}");
    }

    #[test]
    fn up_switch_waits_for_dwell() {
        let v = envivio_video();
        let mut f = Festive::new(12.0, 1.0, 5, 3);
        let mut level = LevelIdx(0);
        let mut ups = 0;
        let mut last_up_at = 0usize;
        for i in 0..12 {
            let d = f.decide(&ctx(&v, Some(10_000.0), Some(level)));
            if d.level > level {
                if ups > 0 {
                    assert!(i - last_up_at >= 3, "up-switches too close at chunk {i}");
                }
                ups += 1;
                last_up_at = i;
            }
            level = d.level;
        }
        assert!(ups >= 2, "should still climb, got {ups} up-switches");
    }

    #[test]
    fn drops_when_throughput_collapses() {
        let v = envivio_video();
        let mut f = Festive::paper_default();
        let d = f.decide(&ctx(&v, Some(100.0), Some(LevelIdx(3))));
        assert_eq!(d.level, LevelIdx(2), "one gradual step down");
    }

    #[test]
    fn stability_penalty_grows_with_recent_switches() {
        let f0 = Festive::paper_default();
        assert_eq!(f0.stability(LevelIdx(1), LevelIdx(1)), 1.0); // 2^0
        assert_eq!(f0.stability(LevelIdx(2), LevelIdx(1)), 2.0); // 2^0 + 1
        let mut f = Festive::paper_default();
        f.record(LevelIdx(0));
        f.record(LevelIdx(1));
        f.record(LevelIdx(0));
        assert_eq!(f.recent_switches(), 2);
        assert_eq!(f.stability(LevelIdx(0), LevelIdx(0)), 4.0); // 2^2
    }

    #[test]
    fn efficiency_matches_festive_formula() {
        let f = Festive::paper_default();
        // Denominator = min(p*C, ref): the reference scores 0 when the
        // prediction covers it.
        assert!(f.efficiency(1000.0, 5000.0, 1000.0).abs() < 1e-12);
        assert!((f.efficiency(500.0, 1000.0, 1000.0) - 0.5).abs() < 1e-12);
        // Prediction below the reference: normalize by the prediction.
        assert!((f.efficiency(2000.0, 1000.0, 3000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holds_level_with_oscillating_history() {
        // After a burst of switches the 2^n stability term dominates, so
        // FESTIVE freezes even when efficiency argues for a change — the
        // "slow to switch up" behaviour the paper observes.
        let v = envivio_video();
        let mut f = Festive::paper_default();
        for lvl in [0usize, 1, 0, 1, 0] {
            f.record(LevelIdx(lvl));
        }
        let before = f.recent_switches();
        assert!(before >= 3);
        let d = f.decide(&ctx(&v, Some(10_000.0), Some(LevelIdx(0))));
        // Even with 10 Mbps available it steps at most one level.
        assert!(d.level.get() <= 1);
    }

    #[test]
    fn reset_clears_history() {
        let mut f = Festive::paper_default();
        f.record(LevelIdx(0));
        f.record(LevelIdx(3));
        f.reset();
        assert_eq!(f.recent_switches(), 0);
    }
}
