//! The rate-based (RB) baseline: "the bitrate is picked as the maximum
//! available bitrate which is less than `p = 1` times the throughput
//! prediction using harmonic mean of past 5 chunks" (Section 7.1.2).
//!
//! The predictor lives in the driver; RB sees only the resulting scalar.

use abr_core::{BitrateController, ControllerContext, Decision};

/// Rate-based bitrate selection.
#[derive(Debug, Clone)]
pub struct RateBased {
    /// Safety factor `p` applied to the prediction (the paper tunes `p = 1`).
    pub p: f64,
}

impl RateBased {
    /// The paper's configuration: `p = 1`.
    pub fn paper_default() -> Self {
        Self { p: 1.0 }
    }

    /// RB with a custom safety factor `p > 0`.
    pub fn with_safety_factor(p: f64) -> Self {
        assert!(p > 0.0 && p.is_finite(), "safety factor must be positive");
        Self { p }
    }
}

impl BitrateController for RateBased {
    fn name(&self) -> &'static str {
        "RB"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let budget = self.p * ctx.prediction_or_floor();
        Decision::level(ctx.video.ladder().max_level_at_most(budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, LevelIdx, Video};

    fn ctx(video: &Video, prediction: Option<f64>) -> ControllerContext<'_> {
        ControllerContext {
            chunk_index: 3,
            buffer_secs: 10.0,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: prediction,
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn picks_floor_of_prediction() {
        let v = envivio_video();
        let mut rb = RateBased::paper_default();
        assert_eq!(rb.decide(&ctx(&v, Some(2500.0))).level, LevelIdx(3));
        assert_eq!(rb.decide(&ctx(&v, Some(3000.0))).level, LevelIdx(4));
        assert_eq!(rb.decide(&ctx(&v, Some(599.0))).level, LevelIdx(0));
    }

    #[test]
    fn no_prediction_starts_lowest() {
        let v = envivio_video();
        let mut rb = RateBased::paper_default();
        assert_eq!(rb.decide(&ctx(&v, None)).level, LevelIdx(0));
    }

    #[test]
    fn safety_factor_scales_budget() {
        let v = envivio_video();
        let mut rb = RateBased::with_safety_factor(0.5);
        // 0.5 * 2100 = 1050 -> 1000 kbps level.
        assert_eq!(rb.decide(&ctx(&v, Some(2100.0))).level, LevelIdx(2));
    }

    #[test]
    fn ignores_buffer_entirely() {
        // RB is the pure "A1" algorithm of Figure 4: same output at any
        // buffer level.
        let v = envivio_video();
        let mut rb = RateBased::paper_default();
        let mut low = ctx(&v, Some(1500.0));
        low.buffer_secs = 0.0;
        let mut high = ctx(&v, Some(1500.0));
        high.buffer_secs = 30.0;
        assert_eq!(rb.decide(&low).level, rb.decide(&high).level);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_safety_factor() {
        let _ = RateBased::with_safety_factor(0.0);
    }
}
