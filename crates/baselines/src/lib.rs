//! Baseline bitrate-adaptation algorithms (Section 7.1.2 of the paper).
//!
//! These are the comparison points for the MPC family:
//!
//! * [`RateBased`] (**RB**) — the classic rate-based strategy: highest
//!   bitrate below `p ×` the throughput prediction;
//! * [`BufferBased`] (**BB**) — Huang et al.'s buffer-based strategy with a
//!   5 s reservoir and 10 s cushion;
//! * [`Festive`] (**FESTIVE**) — Jiang et al.'s stability/efficiency scored
//!   algorithm with stepwise switching (`α = 12`), without the randomized
//!   scheduling that only matters for multi-player fairness (the paper's own
//!   simplification);
//! * [`DashJs`] (**dash.js**) — a Rust port of the reference player's
//!   rule-based logic: `DownloadRatioRule` + `InsufficientBufferRule` with
//!   conservative conflict resolution;
//! * [`Bola`] (**BOLA**, extension) — the Lyapunov buffer-based algorithm
//!   from follow-on work (Spiteri et al., INFOCOM 2016), the other standard
//!   baseline of the post-2015 ABR literature.
//!
//! All implement [`abr_core::BitrateController`], so any driver that runs
//! MPC can run these unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bb;
pub mod bola;
pub mod dashjs;
pub mod festive;
pub mod rb;

pub use bb::BufferBased;
pub use bola::Bola;
pub use dashjs::DashJs;
pub use festive::Festive;
pub use rb::RateBased;
