//! BOLA (Spiteri, Urgaonkar & Sitaraman, INFOCOM 2016) — the
//! Lyapunov-optimization buffer-based algorithm that, together with MPC,
//! became the standard ABR baseline in follow-on work (Pensieve, Puffer).
//! Included as an extension: the paper predates it, but any library in this
//! space is expected to ship it.
//!
//! BOLA-BASIC: with buffer level `Q` measured in chunks, utilities
//! `v_m = ln(S_m / S_1)` (log of the size ratio to the lowest level), and a
//! playback-smoothness parameter `gp > 0`, choose the level maximizing
//!
//! ```text
//! score_m = (V · (v_m + gp) − Q) / s_m
//! ```
//!
//! where `s_m = S_m / S_1` is the normalized chunk size and `V` is the
//! Lyapunov trade-off parameter. We derive `V` from the buffer capacity the
//! way the reference implementation does: `V = (Q_max − 1) / (v_M + gp)`,
//! which makes the top level win exactly when the buffer approaches
//! `Q_max` and the bottom level win near empty. Like BB, BOLA uses **no
//! throughput prediction** — only buffer occupancy.

use abr_core::{BitrateController, ControllerContext, Decision};

/// The BOLA-BASIC controller.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Playback-smoothness utility `gp` (higher = more conservative,
    /// favouring lower levels until the buffer is comfortable).
    pub gp: f64,
}

impl Bola {
    /// The reference configuration (`gp = 5`, a mid-range smoothness that
    /// reproduces the published behaviour on 4 s chunks).
    pub fn reference_default() -> Self {
        Self::new(5.0)
    }

    /// BOLA with a custom `gp > 0`.
    pub fn new(gp: f64) -> Self {
        assert!(gp > 0.0 && gp.is_finite(), "gp must be positive");
        Self { gp }
    }

    /// The BOLA score of level `m` given buffer `q_chunks` and the derived
    /// control parameter `v`.
    fn score(&self, v: f64, utility: f64, size_ratio: f64, q_chunks: f64) -> f64 {
        (v * (utility + self.gp) - q_chunks) / size_ratio
    }
}

impl BitrateController for Bola {
    fn name(&self) -> &'static str {
        "BOLA"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let ladder = ctx.video.ladder();
        let k = ctx.chunk_index;
        let s1 = ctx.video.chunk_size_kbits(k, ladder.lowest());
        let q_chunks = ctx.buffer_secs / ctx.video.chunk_secs();
        let q_max = ctx.buffer_max_secs / ctx.video.chunk_secs();
        let v_top =
            (ctx.video.chunk_size_kbits(k, ladder.highest()) / s1).ln();
        let v = (q_max - 1.0).max(0.1) / (v_top + self.gp);

        let mut best = ladder.lowest();
        let mut best_score = f64::NEG_INFINITY;
        for level in ladder.iter() {
            let size_ratio = ctx.video.chunk_size_kbits(k, level) / s1;
            let utility = size_ratio.ln();
            let score = self.score(v, utility, size_ratio, q_chunks);
            if score > best_score {
                best_score = score;
                best = level;
            }
        }
        Decision::level(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, LevelIdx, Video};

    fn ctx(video: &Video, buffer: f64) -> ControllerContext<'_> {
        ControllerContext {
            chunk_index: 10,
            buffer_secs: buffer,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: Some(99_999.0), // must be ignored
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn empty_buffer_picks_bottom() {
        let v = envivio_video();
        let mut b = Bola::reference_default();
        assert_eq!(b.decide(&ctx(&v, 0.0)).level, LevelIdx(0));
    }

    #[test]
    fn full_buffer_picks_top() {
        let v = envivio_video();
        let mut b = Bola::reference_default();
        assert_eq!(b.decide(&ctx(&v, 30.0)).level, LevelIdx(4));
    }

    #[test]
    fn level_is_monotone_in_buffer() {
        let v = envivio_video();
        let mut b = Bola::reference_default();
        let mut prev = 0usize;
        for q in 0..=30 {
            let lvl = b.decide(&ctx(&v, q as f64)).level.get();
            assert!(
                lvl >= prev,
                "level decreased with more buffer at q={q}: {prev} -> {lvl}"
            );
            prev = lvl;
        }
        assert_eq!(prev, 4, "top level reached by the full buffer");
    }

    #[test]
    fn ignores_throughput_entirely() {
        let v = envivio_video();
        let mut b = Bola::reference_default();
        let mut lo = ctx(&v, 12.0);
        lo.prediction_kbps = Some(10.0);
        let mut hi = ctx(&v, 12.0);
        hi.prediction_kbps = Some(1e6);
        assert_eq!(b.decide(&lo).level, b.decide(&hi).level);
    }

    #[test]
    fn higher_gp_is_more_conservative() {
        let v = envivio_video();
        let mut timid = Bola::new(15.0);
        let mut bold = Bola::new(1.0);
        for q in [6.0, 10.0, 14.0, 18.0] {
            let t = timid.decide(&ctx(&v, q)).level;
            let b = bold.decide(&ctx(&v, q)).level;
            assert!(t <= b, "gp=15 chose {t:?} above gp=1's {b:?} at q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "gp must be positive")]
    fn rejects_bad_gp() {
        let _ = Bola::new(0.0);
    }

    #[test]
    fn streams_a_session_cleanly() {
        use abr_predictor::HarmonicMean;
        // BOLA over the simulator: no panics, sensible aggregate behaviour.
        let v = envivio_video();
        let trace = abr_trace::Trace::constant(2000.0, 60.0).unwrap();
        let mut b = Bola::reference_default();
        let r = abr_sim::run_session(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &v,
            &abr_sim::SimConfig::paper_default(),
        );
        assert_eq!(r.records.len(), 65);
        // A 2 Mbps link sustains the 2000 kbps level once the buffer is up;
        // BOLA should spend most of the session at 1000–2000 kbps.
        assert!(r.avg_bitrate_kbps() > 800.0, "{}", r.avg_bitrate_kbps());
        assert!(r.total_rebuffer_secs() < 5.0);
    }
}
