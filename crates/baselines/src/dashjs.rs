//! A Rust port of the dash.js (v1.2.0) rule-based adaptation logic the
//! paper benchmarks against (Section 6):
//!
//! * **DownloadRatioRule** — compares the play time of the last chunk to its
//!   download time (`ratio = L / download_secs`, equivalently measured
//!   throughput over the current bitrate). A ratio below 1 means the level
//!   is unsustainable: drop to the highest level the measured throughput
//!   sustains. A ratio comfortably above the next level's relative cost
//!   allows a one-step climb.
//! * **InsufficientBufferRule** — if the buffer recently dipped below a
//!   panic threshold, forbid up-switches; on an actual (near-)empty buffer,
//!   fall to the lowest level.
//!
//! Rules run independently and the **most conservative output wins**, the
//! dash.js priority-resolution behaviour. As in the paper's modified player,
//! decisions happen at chunk boundaries and downloads are sequential (the
//! driver guarantees both).
//!
//! The paper's finding — this heuristic achieves low rebuffering but incurs
//! many unnecessary switches because it reacts to every last-chunk ratio —
//! emerges from exactly this structure.

use abr_core::{BitrateController, ControllerContext, Decision};
use abr_video::LevelIdx;

/// The dash.js rule-based controller.
#[derive(Debug, Clone)]
pub struct DashJs {
    /// Extra margin the ratio must clear beyond the next level's relative
    /// cost before switching up (dash.js uses a small safety multiplier).
    pub up_margin: f64,
    /// Buffer level (seconds) below which the insufficient-buffer rule
    /// forces the lowest bitrate.
    pub panic_buffer_secs: f64,
}

impl DashJs {
    /// Defaults mirroring the reference implementation: a 1.0 up-margin
    /// (switch up as soon as the measured ratio covers the next level) and
    /// a one-chunk panic threshold.
    pub fn paper_default() -> Self {
        Self {
            up_margin: 1.0,
            panic_buffer_secs: 4.0,
        }
    }

    /// The DownloadRatioRule in isolation: proposed level from the last
    /// chunk's achieved throughput.
    fn download_ratio_rule(&self, ctx: &ControllerContext<'_>) -> LevelIdx {
        let ladder = ctx.video.ladder();
        let current = match ctx.prev_level {
            Some(l) => l,
            None => return ladder.lowest(),
        };
        let measured = match ctx.last_throughput_kbps {
            Some(c) => c,
            None => return current,
        };
        let cur_kbps = ladder.kbps(current);
        let ratio = measured / cur_kbps;
        if ratio < 1.0 {
            // Unsustainable: drop straight to what the measurement supports.
            ladder.max_level_at_most(measured)
        } else {
            let up = ladder.up(current);
            if up != current {
                let needed = ladder.kbps(up) / cur_kbps * self.up_margin;
                if ratio >= needed {
                    return up;
                }
            }
            current
        }
    }

    /// The InsufficientBufferRule in isolation: a cap on the level.
    fn insufficient_buffer_rule(&self, ctx: &ControllerContext<'_>) -> LevelIdx {
        let ladder = ctx.video.ladder();
        if ctx.buffer_secs < self.panic_buffer_secs {
            return ladder.lowest();
        }
        if ctx.recent_low_buffer {
            // Hold: no up-switch while the buffer has been shaky.
            return ctx.prev_level.unwrap_or_else(|| ladder.lowest());
        }
        ladder.highest()
    }
}

impl BitrateController for DashJs {
    fn name(&self) -> &'static str {
        "dash.js"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let by_ratio = self.download_ratio_rule(ctx);
        let by_buffer = self.insufficient_buffer_rule(ctx);
        Decision::level(by_ratio.min(by_buffer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Video};

    struct CtxArgs {
        buffer: f64,
        prev: Option<LevelIdx>,
        last_throughput: Option<f64>,
        recent_low: bool,
    }

    fn ctx(video: &Video, a: CtxArgs) -> ControllerContext<'_> {
        ControllerContext {
            chunk_index: 10,
            buffer_secs: a.buffer,
            prev_level: a.prev,
            prediction_kbps: None,
            robust_lower_kbps: None,
            last_throughput_kbps: a.last_throughput,
            recent_low_buffer: a.recent_low,
            startup: false,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn first_chunk_starts_lowest() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: None,
                last_throughput: None,
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(0));
    }

    #[test]
    fn ratio_below_one_drops_to_sustainable() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        // Streaming 3000, measured only 800 -> drop to 600.
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: Some(LevelIdx(4)),
                last_throughput: Some(800.0),
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(1));
    }

    #[test]
    fn ratio_above_next_level_climbs_one() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        // At 1000, measured 2500: 2500/1000 >= 2000/1000 -> up one (not two).
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: Some(LevelIdx(2)),
                last_throughput: Some(2500.0),
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(3));
    }

    #[test]
    fn modest_headroom_holds() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        // At 1000, measured 1500 < 2000 -> hold.
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: Some(LevelIdx(2)),
                last_throughput: Some(1500.0),
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(2));
    }

    #[test]
    fn panic_buffer_forces_lowest() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 2.0,
                prev: Some(LevelIdx(3)),
                last_throughput: Some(10_000.0),
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(0));
    }

    #[test]
    fn recent_low_buffer_blocks_upswitch() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: Some(LevelIdx(2)),
                last_throughput: Some(10_000.0),
                recent_low: true,
            },
        ));
        assert_eq!(out.level, LevelIdx(2), "hold, don't climb");
    }

    #[test]
    fn conservative_rule_wins() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        // Ratio says climb to 4; buffer rule says hold at 1 -> hold.
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 10.0,
                prev: Some(LevelIdx(1)),
                last_throughput: Some(50_000.0),
                recent_low: true,
            },
        ));
        assert_eq!(out.level, LevelIdx(1));
    }

    #[test]
    fn at_top_level_sustainable_holds() {
        let v = envivio_video();
        let mut d = DashJs::paper_default();
        let out = d.decide(&ctx(
            &v,
            CtxArgs {
                buffer: 20.0,
                prev: Some(LevelIdx(4)),
                last_throughput: Some(9000.0),
                recent_low: false,
            },
        ));
        assert_eq!(out.level, LevelIdx(4));
    }
}
