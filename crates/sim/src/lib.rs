//! Trace-driven streaming simulator — the paper's "custom simulation
//! framework" (Section 7.3).
//!
//! The simulator models the video download/playback process of Section 3.1
//! exactly: at time `t_k` the bitrate controller picks `R_k`, the chunk
//! downloads for `d_k(R_k)/C_k` seconds where `C_k` is the average
//! throughput the trace delivers over that interval (computed by exact
//! piecewise integration, Eq. 2), the buffer follows Eqs. (3)–(4), and the
//! QoE of Eq. (5) is accounted per chunk.
//!
//! The driver owns the throughput predictor: before each decision it calls
//! [`abr_predictor::Predictor::predict`] (and feeds oracle predictors the
//! true upcoming average throughput via `hint_future`); after each download
//! it calls `observe` with the measured `C_k`. Prediction errors are tracked
//! with [`abr_predictor::ErrorTracked`] so RobustMPC's throughput lower
//! bound is always available in the controller context.
//!
//! Startup follows [`StartupPolicy`]: by default playback begins when the
//! first chunk lands (the behaviour of real players, applied uniformly to
//! all algorithms so the startup QoE term never biases a comparison); fixed
//! delays reproduce Figure 11d; `Controller` lets MPC's `fst_mpc` choose
//! `T_s` itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod session;
pub mod timeline;

pub use config::{RobustBound, SimConfig, StartupPolicy};
pub use metrics::{ChunkRecord, SessionResult};
pub use session::{
    run_session, run_session_core, run_session_with, ChunkDownloader, DownloadOutcome,
    SessionScratch, SessionStepper, TraceDownloader,
};
pub use timeline::{ascii_chart, buffer_timeline, TimelinePoint};
