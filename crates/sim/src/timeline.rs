//! Buffer-occupancy timelines — the continuous `B(t)` signal of the
//! paper's Figure 2, reconstructed from a session's per-chunk records.
//!
//! Within one chunk the buffer is piecewise linear: it drains at rate 1
//! while the video plays during the download, clamps at zero through a
//! rebuffer, jumps by `L` when the chunk lands, and stays flat during a
//! buffer-full wait (the player idles but playback continues draining —
//! so "flat" is actually a drain that the wait formula exactly offsets at
//! `B_max`; we reconstruct the true polyline). Useful for debugging
//! controllers and for the `buffer_timeline` example's Figure-2-style
//! plots.

use crate::metrics::SessionResult;
use serde::{Deserialize, Serialize};

/// One vertex of the buffer polyline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Wall-clock time, seconds.
    pub t_secs: f64,
    /// Buffer occupancy, seconds of video.
    pub buffer_secs: f64,
}

/// Reconstructs the buffer polyline of a session: one segment per phase
/// (drain-during-download, rebuffer floor, chunk arrival jump, post-arrival
/// wait). Points are ordered by time; vertical jumps appear as two points
/// at the same `t`.
pub fn buffer_timeline(session: &SessionResult) -> Vec<TimelinePoint> {
    let mut pts = Vec::with_capacity(session.records.len() * 3 + 1);
    for r in &session.records {
        let start = r.start_secs;
        pts.push(TimelinePoint {
            t_secs: start,
            buffer_secs: r.buffer_before_secs,
        });
        if r.rebuffer_secs > 1e-12 {
            // Drained to zero before the chunk landed.
            let hit_zero = start + r.buffer_before_secs;
            pts.push(TimelinePoint {
                t_secs: hit_zero,
                buffer_secs: 0.0,
            });
            pts.push(TimelinePoint {
                t_secs: start + r.download_secs,
                buffer_secs: 0.0,
            });
        } else {
            // Clamp at zero: the first chunk downloads before playback
            // starts (its record has zero rebuffer by the startup rule), so
            // the buffer floor is not a real drain below zero.
            pts.push(TimelinePoint {
                t_secs: start + r.download_secs,
                buffer_secs: (r.buffer_before_secs - r.download_secs).max(0.0),
            });
        }
        // The chunk lands: the buffer jumps to B_{k+1} + wait (the wait
        // then drains it back down to exactly B_{k+1}).
        let landing_buffer = r.buffer_after_secs + r.wait_secs;
        pts.push(TimelinePoint {
            t_secs: start + r.download_secs,
            buffer_secs: landing_buffer,
        });
        if r.wait_secs > 1e-12 {
            pts.push(TimelinePoint {
                t_secs: start + r.download_secs + r.wait_secs,
                buffer_secs: r.buffer_after_secs,
            });
        }
    }
    pts
}

/// Renders a timeline as a fixed-width ASCII strip chart: `rows` lines of
/// `cols` characters, time left to right, buffer bottom to top.
pub fn ascii_chart(points: &[TimelinePoint], cols: usize, rows: usize, max_buffer: f64) -> String {
    assert!(cols >= 2 && rows >= 2 && max_buffer > 0.0);
    if points.is_empty() {
        return String::new();
    }
    let t_end = points.last().expect("non-empty").t_secs.max(1e-9);
    let mut grid = vec![vec![' '; cols]; rows];
    // Sample the polyline per column.
    let value_at = |t: f64| -> f64 {
        match points.iter().position(|p| p.t_secs >= t) {
            Some(0) => points[0].buffer_secs,
            Some(i) => {
                let (a, b) = (&points[i - 1], &points[i]);
                if (b.t_secs - a.t_secs).abs() < 1e-12 {
                    b.buffer_secs
                } else {
                    a.buffer_secs
                        + (b.buffer_secs - a.buffer_secs) * (t - a.t_secs)
                            / (b.t_secs - a.t_secs)
                }
            }
            None => points.last().expect("non-empty").buffer_secs,
        }
    };
    for c in 0..cols {
        let t = t_end * c as f64 / (cols - 1) as f64;
        let v = value_at(t).clamp(0.0, max_buffer);
        let row = ((1.0 - v / max_buffer) * (rows - 1) as f64).round() as usize;
        grid[row.min(rows - 1)][c] = '*';
    }
    let mut out = String::with_capacity(rows * (cols + 1));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_buffer:>4.0}s |")
        } else if i == rows - 1 {
            "   0s |".to_string()
        } else {
            "      |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("       0s{:>width$.0}s\n", t_end, width = cols - 2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_session, SimConfig};
    use abr_core::{BitrateController, ControllerContext, Decision};
    use abr_predictor::HarmonicMean;
    use abr_trace::Trace;
    use abr_video::{envivio_video, LevelIdx};

    struct Fixed(LevelIdx);
    impl BitrateController for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &ControllerContext<'_>) -> Decision {
            Decision::level(self.0)
        }
    }

    fn session(level: usize, kbps: f64) -> SessionResult {
        let video = envivio_video();
        let trace = Trace::constant(kbps, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(level));
        run_session(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &SimConfig::paper_default(),
        )
    }

    #[test]
    fn timeline_is_time_ordered_and_bounded() {
        let s = session(2, 1500.0);
        let pts = buffer_timeline(&s);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].t_secs >= w[0].t_secs - 1e-12);
        }
        for p in &pts {
            assert!(p.buffer_secs >= -1e-9 && p.buffer_secs <= 30.0 + 4.0 + 1e-9);
        }
    }

    #[test]
    fn timeline_endpoints_match_records() {
        let s = session(2, 1500.0);
        let pts = buffer_timeline(&s);
        let r0 = &s.records[0];
        assert!((pts[0].t_secs - r0.start_secs).abs() < 1e-12);
        assert!((pts[0].buffer_secs - r0.buffer_before_secs).abs() < 1e-12);
        // Last vertex coincides with the final record's post-wait state.
        let last_r = s.records.last().unwrap();
        let last_p = pts.last().unwrap();
        assert!((last_p.buffer_secs - last_r.buffer_after_secs).abs() < 1e-9);
    }

    #[test]
    fn rebuffering_shows_a_zero_floor() {
        // Top level on a slow link rebuffers every chunk: the polyline must
        // visit zero.
        let s = session(4, 600.0);
        assert!(s.total_rebuffer_secs() > 0.0);
        let pts = buffer_timeline(&s);
        assert!(
            pts.iter().any(|p| p.buffer_secs == 0.0),
            "no zero-buffer vertex despite rebuffering"
        );
    }

    #[test]
    fn waits_flatten_at_bmax() {
        // Lowest level on a fast link parks at Bmax with waits.
        let s = session(0, 10_000.0);
        let pts = buffer_timeline(&s);
        let near_max = pts
            .iter()
            .filter(|p| (p.buffer_secs - 30.0).abs() < 4.0 + 1e-9)
            .count();
        assert!(near_max > 10, "expected long dwell near Bmax, got {near_max}");
    }

    #[test]
    fn ascii_chart_renders() {
        let s = session(2, 1500.0);
        let pts = buffer_timeline(&s);
        let chart = ascii_chart(&pts, 60, 10, 34.0);
        assert_eq!(chart.lines().count(), 11);
        assert!(chart.contains('*'));
        assert!(chart.contains("0s"));
    }
}
