//! The simulation loop.
//!
//! [`run_session_core`] is the single stepping loop shared by the pure
//! simulator and `abr-net`'s emulated player: per chunk it hints the oracle,
//! asks the controller for a level, obtains the download time from a
//! [`ChunkDownloader`], and advances the buffer/QoE state. The downloader is
//! the only thing that differs between paths — the simulator integrates the
//! trace directly ([`TraceDownloader`]), the emulated player pushes real
//! HTTP bytes through a shaped link. Everything above the downloader
//! (robust bounds, startup policy, live pacing, records) is therefore
//! exercised identically by both, which is what makes the
//! emulator-vs-simulator parity tests meaningful.
//!
//! [`SessionScratch`] owns the per-session rings (low-buffer history,
//! predictor error window) and, combined with writing into a caller-owned
//! [`SessionResult`], lets grid drivers run thousands of sessions without
//! per-session allocations.

use crate::config::{SimConfig, StartupPolicy};
use crate::metrics::{ChunkRecord, SessionResult};
use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_trace::{Trace, TraceCursor};
use abr_video::{LevelIdx, QoeBreakdown, Video};
use std::collections::VecDeque;

/// Everything a [`ChunkDownloader`] reports about one chunk fetch. On the
/// fault-free path this is just [`DownloadOutcome::clean`]; a fault-injecting
/// downloader can additionally report retries, wasted bytes, delay lost to
/// failed attempts, a bitrate downshift (`delivered_level` below the
/// requested level), or a session abort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadOutcome {
    /// Wall-clock seconds from the request until the chunk (or the abort)
    /// landed, including failed attempts and backoff waits.
    pub secs: f64,
    /// Ladder level actually delivered (== the requested level unless the
    /// downloader downshifted on a re-request).
    pub delivered_level: LevelIdx,
    /// Size of the delivered chunk, kilobits (0 when `aborted`).
    pub delivered_kbits: f64,
    /// Throughput of the *successful* attempt, kbps — what the predictor
    /// should observe (0 when `aborted`).
    pub throughput_kbps: f64,
    /// Re-requests before the chunk was delivered (or the abort).
    pub retries: u32,
    /// Kilobits received on failed attempts and thrown away.
    pub wasted_kbits: f64,
    /// Seconds of `secs` lost to failed attempts and backoff waits.
    pub fault_delay_secs: f64,
    /// The downloader gave up on this chunk; the session ends here.
    pub aborted: bool,
}

impl DownloadOutcome {
    /// A fault-free outcome: the requested chunk arrived in `secs`.
    pub fn clean(level: LevelIdx, size_kbits: f64, secs: f64) -> Self {
        Self {
            secs,
            delivered_level: level,
            delivered_kbits: size_kbits,
            throughput_kbps: size_kbits / secs,
            retries: 0,
            wasted_kbits: 0.0,
            fault_delay_secs: 0.0,
            aborted: false,
        }
    }
}

/// Produces the wall-clock seconds a chunk download takes. Implementations
/// are stateful: calls arrive in chunk order with non-decreasing
/// `start_secs`, so they may keep a [`TraceCursor`] (or a socket) warm.
pub trait ChunkDownloader {
    /// Seconds to fetch chunk `index` at `level` (`size_kbits` kilobits)
    /// starting at `start_secs`. Must be finite and positive.
    fn download_secs(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> f64;

    /// Full outcome of fetching chunk `index`. The default wraps
    /// [`download_secs`](Self::download_secs) in a clean outcome, so
    /// fault-free downloaders stay bit-identical to the pre-fault loop;
    /// fault-injecting downloaders override this instead.
    fn download_outcome(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> DownloadOutcome {
        DownloadOutcome::clean(
            level,
            size_kbits,
            self.download_secs(index, level, size_kbits, start_secs),
        )
    }
}

/// The simulator's downloader: exact piecewise integration of the trace,
/// with a monotone cursor so each call resumes where the last one left off.
#[derive(Debug)]
pub struct TraceDownloader<'a> {
    trace: &'a Trace,
    cursor: TraceCursor,
}

impl<'a> TraceDownloader<'a> {
    /// Creates a downloader over `trace` with a fresh cursor.
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            trace,
            cursor: TraceCursor::new(),
        }
    }
}

impl ChunkDownloader for TraceDownloader<'_> {
    fn download_secs(
        &mut self,
        _index: usize,
        _level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> f64 {
        self.trace
            .time_to_download_at(&mut self.cursor, size_kbits, start_secs)
    }
}

/// Reusable per-session buffers. A grid worker keeps one `SessionScratch`
/// and threads it through every session it runs; after the first session
/// warms the capacities up, steady-state sessions allocate nothing (proven
/// by `tests/no_alloc.rs`).
#[derive(Debug, Default)]
pub struct SessionScratch {
    low_buffer_history: VecDeque<bool>,
    errors: VecDeque<f64>,
}

impl SessionScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs one streaming session: `controller` adapts `video` over `trace`
/// using `predictor` for throughput forecasts.
///
/// The controller is `reset()` at the start so sessions are independent;
/// the predictor is consumed (fresh per session by construction).
///
/// ```
/// use abr_predictor::HarmonicMean;
/// use abr_sim::{run_session, SimConfig};
/// use abr_trace::Trace;
/// use abr_video::envivio_video;
///
/// let video = envivio_video();
/// let trace = Trace::constant(1500.0, 60.0).unwrap();
/// let mut controller = abr_core::Mpc::robust();
/// let result = run_session(
///     &mut controller,
///     HarmonicMean::paper_default(),
///     &trace,
///     &video,
///     &SimConfig::paper_default(),
/// );
/// assert_eq!(result.records.len(), 65);
/// assert!(result.total_rebuffer_secs() < 1.0); // the link sustains 1000 kbps easily
/// ```
pub fn run_session<P: Predictor>(
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_session_with(&mut scratch, &mut out, controller, predictor, trace, video, cfg);
    out
}

/// [`run_session`] writing into caller-owned buffers: `scratch` and `out`
/// are cleared and refilled, retaining their allocations across sessions.
pub fn run_session_with<P: Predictor>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) {
    let mut downloader = TraceDownloader::new(trace);
    run_session_core(
        scratch,
        out,
        controller,
        predictor,
        &mut downloader,
        trace,
        video,
        cfg,
    );
}

/// The shared stepping loop behind both the simulator and the emulated
/// player. `trace` supplies the oracle hint (the true upcoming mean
/// throughput); `downloader` supplies per-chunk download times.
#[allow(clippy::too_many_arguments)]
pub fn run_session_core<P: Predictor, D: ChunkDownloader + ?Sized>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    downloader: &mut D,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) {
    assert!(
        cfg.buffer_max_secs >= video.chunk_secs(),
        "buffer must hold at least one chunk"
    );
    controller.reset();
    let mut predictor = ErrorTracked::with_buffer(
        predictor,
        cfg.error_window,
        std::mem::take(&mut scratch.errors),
    );

    let mut qoe = QoeBreakdown::default();
    out.records.clear();
    out.records.reserve(video.num_chunks());
    out.aborted = false;
    out.abort_secs = 0.0;
    out.abort_retries = 0;
    out.abort_wasted_kbits = 0.0;
    let mut now = 0.0_f64; // wall clock
    let mut buffer = 0.0_f64; // B_k
    let mut prev_level = None;
    let mut startup_secs = 0.0_f64;
    let mut last_throughput = None;
    let low_buffer_history = &mut scratch.low_buffer_history;
    low_buffer_history.clear();
    let mut hint_cursor = TraceCursor::new();

    for k in 0..video.num_chunks() {
        // Oracle predictors get the true mean upcoming throughput.
        let horizon_end = now + cfg.hint_horizon_secs.max(video.chunk_secs());
        let truth =
            trace.integrate_kbits_at(&mut hint_cursor, now, horizon_end) / (horizon_end - now);
        if truth > 0.0 {
            predictor.hint_future(truth);
        }

        let prediction = predictor.predict();
        let robust_lower = match cfg.robust_bound {
            crate::config::RobustBound::MaxError => predictor.robust_lower_bound(),
            crate::config::RobustBound::MeanError => {
                prediction.map(|p| p / (1.0 + predictor.mean_error()))
            }
        };
        let ctx = ControllerContext {
            chunk_index: k,
            buffer_secs: buffer,
            prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: robust_lower,
            last_throughput_kbps: last_throughput,
            recent_low_buffer: low_buffer_history.iter().any(|&b| b),
            startup: k == 0,
            video,
            buffer_max_secs: cfg.buffer_max_secs,
        };
        let decision = controller.decide(&ctx);
        let level = decision.level;
        assert!(
            level.get() < video.ladder().len(),
            "{} chose out-of-range level {level:?}",
            controller.name()
        );

        // Startup: establish T_s and the equivalent initial buffer credit.
        if k == 0 {
            match cfg.startup {
                StartupPolicy::FirstChunk => {} // handled after the download
                StartupPolicy::Fixed(ts) => {
                    assert!(ts >= 0.0, "negative fixed startup delay");
                    startup_secs = ts;
                    buffer = ts.min(cfg.buffer_max_secs);
                }
                StartupPolicy::Controller => {
                    let ts = decision.startup_wait_secs.unwrap_or(0.0);
                    startup_secs = ts;
                    buffer = ts.min(cfg.buffer_max_secs);
                }
            }
        }

        // Live mode: the chunk may not exist yet — wait for the encoder.
        // The buffer keeps draining through the wait, exactly like a slow
        // download.
        let availability_wait = match cfg.live {
            Some(live) => (live.available_at(k, video.chunk_secs()) - now).max(0.0),
            None => 0.0,
        };

        // Download (the simulator integrates the trace; the emulated path
        // pushes real HTTP bytes through a shaped link).
        let size_kbits = video.chunk_size_kbits(k, level);
        let dl_start = now + availability_wait;
        let outcome = downloader.download_outcome(k, level, size_kbits, dl_start);
        if outcome.aborted {
            // Retry budget exhausted: the chunk never arrived. The time
            // burned failing drains the buffer like a slow download — past
            // the buffer it is rebuffering (or startup delay for chunk 0) —
            // and the session ends here.
            let elapsed = availability_wait + outcome.secs;
            if k == 0 && matches!(cfg.startup, StartupPolicy::FirstChunk) {
                startup_secs = elapsed;
            } else {
                qoe.push_rebuffer(&cfg.weights, (elapsed - buffer).max(0.0));
            }
            now += elapsed;
            out.aborted = true;
            out.abort_secs = outcome.secs;
            out.abort_retries = outcome.retries;
            out.abort_wasted_kbits = outcome.wasted_kbits;
            break;
        }
        let download_secs = outcome.secs;
        assert!(
            download_secs.is_finite() && download_secs > 0.0,
            "download of {size_kbits} kbits never completes at t={dl_start}"
        );
        let throughput = outcome.throughput_kbps;

        let mut step = advance_buffer(
            buffer,
            availability_wait + download_secs,
            video.chunk_secs(),
            cfg.buffer_max_secs,
        );
        if k == 0 && matches!(cfg.startup, StartupPolicy::FirstChunk) {
            // Playback starts when this chunk lands: the time to get it is
            // the startup delay, not a rebuffer.
            startup_secs = availability_wait + download_secs;
            step.rebuffer_secs = 0.0;
        }

        qoe.push_chunk(
            &cfg.weights,
            video.ladder().kbps(outcome.delivered_level),
            step.rebuffer_secs,
        );
        out.records.push(ChunkRecord {
            index: k,
            level: outcome.delivered_level,
            bitrate_kbps: video.ladder().kbps(outcome.delivered_level),
            size_kbits: outcome.delivered_kbits,
            start_secs: dl_start,
            download_secs,
            rebuffer_secs: step.rebuffer_secs,
            wait_secs: step.wait_secs,
            availability_wait_secs: availability_wait,
            buffer_before_secs: buffer,
            buffer_after_secs: step.next_buffer_secs,
            throughput_kbps: throughput,
            prediction_kbps: prediction,
            retries: outcome.retries,
            wasted_kbits: outcome.wasted_kbits,
            fault_delay_secs: outcome.fault_delay_secs,
        });

        // Bookkeeping for the next iteration.
        if low_buffer_history.len() == cfg.low_buffer_window_chunks {
            low_buffer_history.pop_front();
        }
        low_buffer_history.push_back(buffer < cfg.low_buffer_threshold_secs);
        predictor.observe(throughput);
        last_throughput = Some(throughput);
        now += availability_wait + download_secs + step.wait_secs;
        buffer = step.next_buffer_secs;
        prev_level = Some(outcome.delivered_level);
    }

    qoe.set_startup(&cfg.weights, startup_secs);
    out.algorithm.clear();
    out.algorithm.push_str(controller.name());
    out.startup_secs = startup_secs;
    out.total_secs = now;
    out.qoe = qoe;
    // Hand the predictor's error ring back for the next session.
    scratch.errors = predictor.into_parts().1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, DashJs, Festive, RateBased};
    use abr_core::{Decision, Mpc, MpcConfig};
    use abr_predictor::{HarmonicMean, NoisyOracle};
    use abr_trace::Dataset;
    use abr_video::{envivio_video, LevelIdx, QoeWeights};

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    /// A controller that always requests the same level.
    struct Fixed(LevelIdx);
    impl BitrateController for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &ControllerContext<'_>) -> Decision {
            Decision::level(self.0)
        }
    }

    #[test]
    fn constant_trace_matches_analytic_math() {
        // 1000 kbps link, fixed 1000 kbps level: every chunk downloads in
        // exactly L seconds, so after startup the buffer stays at L and
        // there is never a rebuffer.
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert_eq!(r.records.len(), 65);
        assert!((r.startup_secs - 4.0).abs() < 1e-9, "{}", r.startup_secs);
        assert!(r.total_rebuffer_secs() < 1e-9);
        for rec in &r.records {
            assert!((rec.download_secs - 4.0).abs() < 1e-9);
            assert!((rec.throughput_kbps - 1000.0).abs() < 1e-9);
        }
        // Buffer holds at exactly one chunk after each download.
        assert!((r.records[5].buffer_after_secs - 4.0).abs() < 1e-9);
        // QoE = 65 chunks * 1000 - startup penalty.
        let expect = 65.0 * 1000.0 - 3000.0 * 4.0;
        assert!((r.qoe.qoe - expect).abs() < 1e-6, "{}", r.qoe.qoe);
    }

    #[test]
    fn fast_link_fills_buffer_and_waits() {
        // 10 Mbps link, lowest level: downloads are much faster than
        // playback, so the buffer parks at Bmax and the player idles.
        let v = envivio_video();
        let t = Trace::constant(10_000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(0));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(r.total_rebuffer_secs() < 1e-9);
        let max_buf = r
            .records
            .iter()
            .map(|x| x.buffer_after_secs)
            .fold(0.0, f64::max);
        assert!(max_buf <= 30.0 + 1e-9);
        assert!((max_buf - 30.0).abs() < 1e-6, "buffer should reach Bmax");
        assert!(r.records.iter().map(|x| x.wait_secs).sum::<f64>() > 0.0);
    }

    #[test]
    fn slow_link_high_level_rebuffers() {
        // 500 kbps link, fixed top level (3000 kbps): rebuffer every chunk.
        let v = envivio_video();
        let t = Trace::constant(500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(4));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        // Each chunk takes 24 s to download but yields 4 s of video.
        assert!(r.total_rebuffer_secs() > 100.0);
        assert!(r.qoe.qoe < 0.0, "QoE should collapse: {}", r.qoe.qoe);
    }

    #[test]
    fn fixed_startup_gives_buffer_credit() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let mut config = cfg();
        config.startup = StartupPolicy::Fixed(6.0);
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert_eq!(r.startup_secs, 6.0);
        // First chunk: 4 s download against 6 s credit -> no rebuffer.
        assert_eq!(r.records[0].rebuffer_secs, 0.0);
        assert!((r.records[0].buffer_before_secs - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_startup_shortfall_is_rebuffering() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(4)); // 12 s first download
        let mut config = cfg();
        config.startup = StartupPolicy::Fixed(2.0);
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert!((r.records[0].rebuffer_secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn controller_startup_policy_uses_fst_mpc() {
        let v = envivio_video();
        let t = Trace::constant(600.0, 400.0).unwrap();
        let mut mpc = Mpc::new(MpcConfig {
            optimize_startup: true,
            weights: QoeWeights {
                mu_s: 10.0, // cheap startup: waiting is worthwhile
                ..QoeWeights::balanced()
            },
            ..MpcConfig::paper_default()
        });
        let mut config = cfg();
        config.startup = StartupPolicy::Controller;
        config.weights = QoeWeights {
            mu_s: 10.0,
            ..QoeWeights::balanced()
        };
        let r = run_session(&mut mpc, HarmonicMean::paper_default(), &t, &v, &config);
        assert!(r.startup_secs > 0.0);
    }

    #[test]
    fn all_algorithms_complete_all_datasets() {
        let v = envivio_video();
        let config = cfg();
        for ds in Dataset::ALL {
            for trace in ds.generate(99, 3) {
                let mut algos: Vec<Box<dyn BitrateController>> = vec![
                    Box::new(RateBased::paper_default()),
                    Box::new(BufferBased::paper_default()),
                    Box::new(Festive::paper_default()),
                    Box::new(DashJs::paper_default()),
                    Box::new(Mpc::paper_default()),
                    Box::new(Mpc::robust()),
                ];
                for a in &mut algos {
                    let r = run_session(
                        a.as_mut(),
                        HarmonicMean::paper_default(),
                        &trace,
                        &v,
                        &config,
                    );
                    assert_eq!(r.records.len(), 65);
                    assert!(r.total_secs > 0.0);
                    assert!(r.qoe.qoe.is_finite());
                    // Buffer invariant throughout.
                    for rec in &r.records {
                        assert!(rec.buffer_after_secs >= -1e-9);
                        assert!(rec.buffer_after_secs <= 30.0 + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_hint_drives_perfect_predictions() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, NoisyOracle::perfect(), &t, &v, &cfg());
        // Constant trace: hints equal measured throughput, so error is 0.
        let err = r.mean_prediction_error().unwrap();
        assert!(err < 1e-9, "error {err}");
        assert!(r.records[0].prediction_kbps.is_some());
    }

    #[test]
    fn harmonic_mean_has_no_prediction_for_first_chunk() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(0));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert_eq!(r.records[0].prediction_kbps, None);
        assert!(r.records[1].prediction_kbps.is_some());
    }

    #[test]
    fn wall_clock_is_downloads_plus_waits() {
        let v = envivio_video();
        let t = Trace::constant(2000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        let sum: f64 = r
            .records
            .iter()
            .map(|x| x.download_secs + x.wait_secs)
            .sum();
        assert!((r.total_secs - sum).abs() < 1e-9);
    }

    #[test]
    fn mean_error_bound_is_less_conservative() {
        // On a volatile trace, the mean-error bound sits above the
        // max-error bound, so RobustMPC(mean) streams at least as high on
        // average as RobustMPC(max).
        let v = envivio_video();
        let t = Trace::new(vec![
            (20.0, 2500.0),
            (10.0, 700.0),
            (20.0, 2500.0),
            (10.0, 500.0),
        ])
        .unwrap();
        let mut cfg_max = cfg();
        cfg_max.robust_bound = crate::config::RobustBound::MaxError;
        let mut cfg_mean = cfg();
        cfg_mean.robust_bound = crate::config::RobustBound::MeanError;
        let mut a = Mpc::robust();
        let r_max = run_session(&mut a, HarmonicMean::paper_default(), &t, &v, &cfg_max);
        let mut b = Mpc::robust();
        let r_mean = run_session(&mut b, HarmonicMean::paper_default(), &t, &v, &cfg_mean);
        assert!(
            r_mean.avg_bitrate_kbps() >= r_max.avg_bitrate_kbps() - 1e-9,
            "mean {} vs max {}",
            r_mean.avg_bitrate_kbps(),
            r_max.avg_bitrate_kbps()
        );
    }

    #[test]
    fn mpc_beats_fixed_top_level_on_volatile_trace() {
        // Sanity: adaptation must beat the naive "always max" policy when
        // the link cannot sustain the max.
        let v = envivio_video();
        let t = Trace::new(vec![(30.0, 2500.0), (30.0, 600.0)]).unwrap();
        let mut top = Fixed(LevelIdx(4));
        let r_top = run_session(&mut top, HarmonicMean::paper_default(), &t, &v, &cfg());
        let mut mpc = Mpc::robust();
        let r_mpc = run_session(&mut mpc, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(
            r_mpc.qoe.qoe > r_top.qoe.qoe,
            "MPC {} vs fixed-top {}",
            r_mpc.qoe.qoe,
            r_top.qoe.qoe
        );
    }

    #[test]
    fn vod_sessions_never_wait_for_availability() {
        let v = envivio_video();
        let t = Trace::constant(2000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(r.records.iter().all(|x| x.availability_wait_secs == 0.0));
    }

    #[test]
    fn live_mode_paces_at_the_encoder() {
        // Infinite-feeling bandwidth, 8 s behind live: downloads are nearly
        // instant, so the player is gated by chunk availability — exactly
        // one chunk per L seconds — and the buffer parks near the offset.
        let v = envivio_video();
        let t = Trace::constant(100_000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let mut config = cfg();
        config.live = Some(crate::LiveConfig {
            availability_offset_secs: 8.0,
        });
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert!(r.total_rebuffer_secs() < 1e-6);
        // Mid-session: every chunk waits ~L for the encoder.
        for rec in &r.records[3..60] {
            assert!(
                rec.availability_wait_secs > 3.0,
                "chunk {} waited only {}",
                rec.index,
                rec.availability_wait_secs
            );
            // The buffer can never exceed what the encoder has produced.
            assert!(
                rec.buffer_after_secs <= 8.0 + 4.0 + 1e-6,
                "buffer {} outran the live edge",
                rec.buffer_after_secs
            );
        }
        // Wall clock ~ when the last chunk is encoded: 65*4 - 8 = 252 s.
        assert!(r.total_secs >= 251.9, "{}", r.total_secs);
    }

    #[test]
    fn live_mode_small_offset_rebuffers_on_dips() {
        // 4 s behind live with a mid-stream dip: the player cannot build a
        // protective buffer (the encoder hasn't produced it), so the dip
        // hits playback directly.
        let v = envivio_video();
        let t = Trace::new(vec![(60.0, 3000.0), (20.0, 400.0), (120.0, 3000.0)]).unwrap();
        let mut live_cfg = cfg();
        live_cfg.live = Some(crate::LiveConfig {
            availability_offset_secs: 4.0,
        });
        let mut c1 = Fixed(LevelIdx(2));
        let live = run_session(&mut c1, HarmonicMean::paper_default(), &t, &v, &live_cfg);
        let mut c2 = Fixed(LevelIdx(2));
        let vod = run_session(&mut c2, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(
            live.total_rebuffer_secs() > vod.total_rebuffer_secs(),
            "live {} should rebuffer more than VOD {}",
            live.total_rebuffer_secs(),
            vod.total_rebuffer_secs()
        );
        assert!(live.total_rebuffer_secs() > 1.0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_sessions() {
        // One SessionScratch/SessionResult pair threaded through a mixed bag
        // of sessions must reproduce exactly what fresh-allocation runs
        // produce, byte for byte.
        let v = envivio_video();
        let traces = [
            Trace::constant(1200.0, 60.0).unwrap(),
            Trace::new(vec![(20.0, 2500.0), (10.0, 700.0), (15.0, 0.0), (20.0, 1800.0)]).unwrap(),
            Trace::new(vec![(30.0, 600.0), (30.0, 3000.0)]).unwrap(),
        ];
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        for trace in &traces {
            for bound in [
                crate::config::RobustBound::MaxError,
                crate::config::RobustBound::MeanError,
            ] {
                let mut config = cfg();
                config.robust_bound = bound;
                let mut a = Mpc::robust();
                let fresh =
                    run_session(&mut a, HarmonicMean::paper_default(), trace, &v, &config);
                let mut b = Mpc::robust();
                run_session_with(
                    &mut scratch,
                    &mut out,
                    &mut b,
                    HarmonicMean::paper_default(),
                    trace,
                    &v,
                    &config,
                );
                assert_eq!(fresh, out);
                assert_eq!(
                    fresh.qoe.qoe.to_bits(),
                    out.qoe.qoe.to_bits(),
                    "reused-scratch QoE drifted"
                );
                for (x, y) in fresh.records.iter().zip(&out.records) {
                    assert_eq!(x.download_secs.to_bits(), y.download_secs.to_bits());
                    assert_eq!(x.buffer_after_secs.to_bits(), y.buffer_after_secs.to_bits());
                }
            }
        }
    }

    /// Wraps [`TraceDownloader`] but reports a fault-laden abort at one
    /// chosen chunk index — the sim-side stand-in for a hostile network.
    struct AbortAt<'a> {
        inner: TraceDownloader<'a>,
        at: usize,
        abort_secs: f64,
    }
    impl ChunkDownloader for AbortAt<'_> {
        fn download_secs(
            &mut self,
            index: usize,
            level: LevelIdx,
            size_kbits: f64,
            start_secs: f64,
        ) -> f64 {
            self.inner.download_secs(index, level, size_kbits, start_secs)
        }
        fn download_outcome(
            &mut self,
            index: usize,
            level: LevelIdx,
            size_kbits: f64,
            start_secs: f64,
        ) -> DownloadOutcome {
            if index == self.at {
                DownloadOutcome {
                    secs: self.abort_secs,
                    delivered_level: level,
                    delivered_kbits: 0.0,
                    throughput_kbps: 0.0,
                    retries: 3,
                    wasted_kbits: 42.0,
                    fault_delay_secs: self.abort_secs,
                    aborted: true,
                }
            } else {
                DownloadOutcome::clean(
                    level,
                    size_kbits,
                    self.download_secs(index, level, size_kbits, start_secs),
                )
            }
        }
    }

    #[test]
    fn abort_truncates_session_with_rebuffer_accounting() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let config = cfg();
        // Plain run, to learn the buffer level going into chunk 5.
        let mut c = Fixed(LevelIdx(2));
        let plain = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        let buffer_before = plain.records[5].buffer_before_secs;

        let abort_secs = 12.5;
        let mut downloader = AbortAt {
            inner: TraceDownloader::new(&t),
            at: 5,
            abort_secs,
        };
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        let mut c2 = Fixed(LevelIdx(2));
        run_session_core(
            &mut scratch,
            &mut out,
            &mut c2,
            HarmonicMean::paper_default(),
            &mut downloader,
            &t,
            &v,
            &config,
        );
        assert_eq!(out.records.len(), 5, "session stops at the aborted chunk");
        assert!(out.aborted);
        assert_eq!(out.abort_secs, abort_secs);
        assert_eq!(out.abort_retries, 3);
        assert_eq!(out.abort_wasted_kbits, 42.0);
        assert_eq!(out.total_retries(), 3);
        // The first 5 chunks are untouched by the abort.
        for (a, b) in out.records.iter().zip(&plain.records) {
            assert_eq!(a, b);
        }
        // Rebuffer: the failed 12.5 s drained the buffer, the rest stalled
        // playback. One extra rebuffer event, charged at mu + mu_event.
        let expect_rebuf = (abort_secs - buffer_before).max(0.0);
        assert!(expect_rebuf > 0.0, "test should exercise a real stall");
        let plain5: f64 = plain.records[..5].iter().map(|r| r.rebuffer_secs).sum();
        assert!(
            (out.qoe.total_rebuffer_secs - (plain5 + expect_rebuf)).abs() < 1e-9,
            "rebuffer {} vs expected {}",
            out.qoe.total_rebuffer_secs,
            plain5 + expect_rebuf
        );
        assert!(out.qoe.qoe.is_finite());
        // An aborted *first* chunk under FirstChunk startup is startup
        // delay, not rebuffering.
        let mut first = AbortAt {
            inner: TraceDownloader::new(&t),
            at: 0,
            abort_secs,
        };
        let mut c3 = Fixed(LevelIdx(2));
        run_session_core(
            &mut scratch,
            &mut out,
            &mut c3,
            HarmonicMean::paper_default(),
            &mut first,
            &t,
            &v,
            &config,
        );
        assert!(out.aborted);
        assert!(out.records.is_empty());
        assert_eq!(out.startup_secs, abort_secs);
        assert_eq!(out.qoe.total_rebuffer_secs, 0.0);
    }

    #[test]
    fn per_chunk_throughput_consistent_with_trace() {
        let v = envivio_video();
        let t = Trace::new(vec![(20.0, 800.0), (20.0, 3000.0)]).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        for rec in &r.records {
            let integrated =
                t.integrate_kbits(rec.start_secs, rec.start_secs + rec.download_secs);
            assert!(
                (integrated - rec.size_kbits).abs() < 1e-6 * rec.size_kbits.max(1.0),
                "chunk {} downloaded {} kbits but trace delivered {integrated}",
                rec.index,
                rec.size_kbits
            );
        }
    }
}
