//! The simulation loop.
//!
//! [`run_session_core`] is the single stepping loop shared by the pure
//! simulator and `abr-net`'s emulated player: per chunk it hints the oracle,
//! asks the controller for a level, obtains the download time from a
//! [`ChunkDownloader`], and advances the buffer/QoE state. The downloader is
//! the only thing that differs between paths — the simulator integrates the
//! trace directly ([`TraceDownloader`]), the emulated player pushes real
//! HTTP bytes through a shaped link. Everything above the downloader
//! (robust bounds, startup policy, live pacing, records) is therefore
//! exercised identically by both, which is what makes the
//! emulator-vs-simulator parity tests meaningful.
//!
//! [`SessionScratch`] owns the per-session rings (low-buffer history,
//! predictor error window) and, combined with writing into a caller-owned
//! [`SessionResult`], lets grid drivers run thousands of sessions without
//! per-session allocations.
//!
//! The loop itself is factored as [`SessionStepper`] — an explicit
//! per-chunk state machine (`context` → decide → `apply`) — so drivers
//! that batch decisions across many sessions (the harness's lockstep grid
//! path, the load generator's aggregating proxy) can interleave sessions
//! chunk by chunk while staying bit-identical to back-to-back runs.

use crate::config::{SimConfig, StartupPolicy};
use crate::metrics::{ChunkRecord, SessionResult};
use abr_core::{advance_buffer, BitrateController, ControllerContext, Decision};
use abr_predictor::{ErrorTracked, Predictor};
use abr_trace::{Trace, TraceCursor};
use abr_video::{LevelIdx, QoeBreakdown, Video};
use std::collections::VecDeque;

/// Everything a [`ChunkDownloader`] reports about one chunk fetch. On the
/// fault-free path this is just [`DownloadOutcome::clean`]; a fault-injecting
/// downloader can additionally report retries, wasted bytes, delay lost to
/// failed attempts, a bitrate downshift (`delivered_level` below the
/// requested level), or a session abort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadOutcome {
    /// Wall-clock seconds from the request until the chunk (or the abort)
    /// landed, including failed attempts and backoff waits.
    pub secs: f64,
    /// Ladder level actually delivered (== the requested level unless the
    /// downloader downshifted on a re-request).
    pub delivered_level: LevelIdx,
    /// Size of the delivered chunk, kilobits (0 when `aborted`).
    pub delivered_kbits: f64,
    /// Throughput of the *successful* attempt, kbps — what the predictor
    /// should observe (0 when `aborted`).
    pub throughput_kbps: f64,
    /// Re-requests before the chunk was delivered (or the abort).
    pub retries: u32,
    /// Kilobits received on failed attempts and thrown away.
    pub wasted_kbits: f64,
    /// Seconds of `secs` lost to failed attempts and backoff waits.
    pub fault_delay_secs: f64,
    /// The downloader gave up on this chunk; the session ends here.
    pub aborted: bool,
}

impl DownloadOutcome {
    /// A fault-free outcome: the requested chunk arrived in `secs`.
    pub fn clean(level: LevelIdx, size_kbits: f64, secs: f64) -> Self {
        Self {
            secs,
            delivered_level: level,
            delivered_kbits: size_kbits,
            throughput_kbps: size_kbits / secs,
            retries: 0,
            wasted_kbits: 0.0,
            fault_delay_secs: 0.0,
            aborted: false,
        }
    }
}

/// Produces the wall-clock seconds a chunk download takes. Implementations
/// are stateful: calls arrive in chunk order with non-decreasing
/// `start_secs`, so they may keep a [`TraceCursor`] (or a socket) warm.
pub trait ChunkDownloader {
    /// Seconds to fetch chunk `index` at `level` (`size_kbits` kilobits)
    /// starting at `start_secs`. Must be finite and positive.
    fn download_secs(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> f64;

    /// Full outcome of fetching chunk `index`. The default wraps
    /// [`download_secs`](Self::download_secs) in a clean outcome, so
    /// fault-free downloaders stay bit-identical to the pre-fault loop;
    /// fault-injecting downloaders override this instead.
    fn download_outcome(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> DownloadOutcome {
        DownloadOutcome::clean(
            level,
            size_kbits,
            self.download_secs(index, level, size_kbits, start_secs),
        )
    }
}

impl<D: ChunkDownloader + ?Sized> ChunkDownloader for &mut D {
    fn download_secs(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> f64 {
        (**self).download_secs(index, level, size_kbits, start_secs)
    }

    // Forwarded explicitly: falling back to the default would wrap
    // `download_secs` in a clean outcome and silently drop the inner
    // downloader's faults.
    fn download_outcome(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> DownloadOutcome {
        (**self).download_outcome(index, level, size_kbits, start_secs)
    }
}

/// The simulator's downloader: exact piecewise integration of the trace,
/// with a monotone cursor so each call resumes where the last one left off.
#[derive(Debug)]
pub struct TraceDownloader<'a> {
    trace: &'a Trace,
    cursor: TraceCursor,
}

impl<'a> TraceDownloader<'a> {
    /// Creates a downloader over `trace` with a fresh cursor.
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            trace,
            cursor: TraceCursor::new(),
        }
    }
}

impl ChunkDownloader for TraceDownloader<'_> {
    fn download_secs(
        &mut self,
        _index: usize,
        _level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> f64 {
        self.trace
            .time_to_download_at(&mut self.cursor, size_kbits, start_secs)
    }
}

/// Reusable per-session buffers. A grid worker keeps one `SessionScratch`
/// and threads it through every session it runs; after the first session
/// warms the capacities up, steady-state sessions allocate nothing (proven
/// by `tests/no_alloc.rs`).
#[derive(Debug, Default)]
pub struct SessionScratch {
    low_buffer_history: VecDeque<bool>,
    errors: VecDeque<f64>,
}

impl SessionScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs one streaming session: `controller` adapts `video` over `trace`
/// using `predictor` for throughput forecasts.
///
/// The controller is `reset()` at the start so sessions are independent;
/// the predictor is consumed (fresh per session by construction).
///
/// ```
/// use abr_predictor::HarmonicMean;
/// use abr_sim::{run_session, SimConfig};
/// use abr_trace::Trace;
/// use abr_video::envivio_video;
///
/// let video = envivio_video();
/// let trace = Trace::constant(1500.0, 60.0).unwrap();
/// let mut controller = abr_core::Mpc::robust();
/// let result = run_session(
///     &mut controller,
///     HarmonicMean::paper_default(),
///     &trace,
///     &video,
///     &SimConfig::paper_default(),
/// );
/// assert_eq!(result.records.len(), 65);
/// assert!(result.total_rebuffer_secs() < 1.0); // the link sustains 1000 kbps easily
/// ```
pub fn run_session<P: Predictor>(
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_session_with(&mut scratch, &mut out, controller, predictor, trace, video, cfg);
    out
}

/// [`run_session`] writing into caller-owned buffers: `scratch` and `out`
/// are cleared and refilled, retaining their allocations across sessions.
pub fn run_session_with<P: Predictor>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) {
    let mut downloader = TraceDownloader::new(trace);
    run_session_core(
        scratch,
        out,
        controller,
        predictor,
        &mut downloader,
        trace,
        video,
        cfg,
    );
}

/// The shared stepping loop behind both the simulator and the emulated
/// player. `trace` supplies the oracle hint (the true upcoming mean
/// throughput); `downloader` supplies per-chunk download times.
///
/// This is [`SessionStepper`] driven by one controller to completion; grid
/// drivers that interleave many sessions (the harness's lockstep batch
/// path, the load generator's aggregating proxy) drive the stepper
/// directly instead.
#[allow(clippy::too_many_arguments)]
pub fn run_session_core<P: Predictor, D: ChunkDownloader + ?Sized>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    downloader: &mut D,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) {
    controller.reset();
    let mut stepper = SessionStepper::start(scratch, out, predictor, downloader, trace, video, cfg);
    while !stepper.is_done() {
        let ctx = stepper.context();
        let decision = controller.decide(&ctx);
        let level = decision.level;
        assert!(
            level.get() < video.ladder().len(),
            "{} chose out-of-range level {level:?}",
            controller.name()
        );
        stepper.apply(decision);
    }
    stepper.finish(controller.name());
}

/// One streaming session, unrolled into explicit steps so callers can
/// interleave many sessions: [`context`](Self::context) exposes the state
/// the controller sees for the next chunk, [`apply`](Self::apply) plays
/// out the chosen download, [`finish`](Self::finish) writes the epilogue.
///
/// The chunk-by-chunk state machine is exactly [`run_session_core`]'s loop
/// — `run_session_core` *is* this stepper driven by a single controller —
/// so a batch driver that calls `context`/`apply` per session per chunk is
/// bit-identical to running the sessions back to back. The harness's
/// lockstep batch path and the load generator's aggregating proxy both
/// lean on that equivalence.
///
/// Protocol per chunk: `context()` (any number of times — the oracle hint
/// is applied once and the prediction cached), then `apply(decision)`.
/// `context`/`apply` must not be called once [`is_done`](Self::is_done)
/// returns true. The caller is responsible for validating the decision's
/// level (out-of-range panics inside `apply` on chunk-size lookup,
/// without the controller name `run_session_core` includes).
#[derive(Debug)]
pub struct SessionStepper<'a, P: Predictor, D: ChunkDownloader> {
    scratch: &'a mut SessionScratch,
    out: &'a mut SessionResult,
    predictor: ErrorTracked<P>,
    downloader: D,
    trace: &'a Trace,
    video: &'a Video,
    cfg: &'a SimConfig,
    qoe: QoeBreakdown,
    hint_cursor: TraceCursor,
    k: usize,
    now: f64,       // wall clock
    buffer: f64,    // B_k
    prev_level: Option<LevelIdx>,
    startup_secs: f64,
    last_throughput: Option<f64>,
    // True once this chunk's oracle hint has been applied and the
    // prediction cached; reset by `apply` so repeated `context()` calls
    // within one chunk are idempotent.
    hinted: bool,
    prediction: Option<f64>,
    robust_lower: Option<f64>,
    aborted: bool,
}

impl<'a, P: Predictor, D: ChunkDownloader> SessionStepper<'a, P, D> {
    /// Begins a session: clears `scratch`/`out` (retaining capacity) and
    /// wraps `predictor` in error tracking. Does **not** reset the
    /// controller — the caller owns it (a batch driver shares one
    /// controller across many steppers).
    pub fn start(
        scratch: &'a mut SessionScratch,
        out: &'a mut SessionResult,
        predictor: P,
        downloader: D,
        trace: &'a Trace,
        video: &'a Video,
        cfg: &'a SimConfig,
    ) -> Self {
        assert!(
            cfg.buffer_max_secs >= video.chunk_secs(),
            "buffer must hold at least one chunk"
        );
        if let Some(live) = &cfg.live {
            assert!(
                live.max_buffer_secs >= video.chunk_secs(),
                "live buffer cap must hold at least one chunk"
            );
        }
        let predictor = ErrorTracked::with_buffer(
            predictor,
            cfg.error_window,
            std::mem::take(&mut scratch.errors),
        );
        out.records.clear();
        out.records.reserve(video.num_chunks());
        out.aborted = false;
        out.abort_secs = 0.0;
        out.abort_retries = 0;
        out.abort_wasted_kbits = 0.0;
        scratch.low_buffer_history.clear();
        Self {
            scratch,
            out,
            predictor,
            downloader,
            trace,
            video,
            cfg,
            qoe: QoeBreakdown::default(),
            hint_cursor: TraceCursor::new(),
            k: 0,
            now: 0.0,
            buffer: 0.0,
            prev_level: None,
            startup_secs: 0.0,
            last_throughput: None,
            hinted: false,
            prediction: None,
            robust_lower: None,
            aborted: false,
        }
    }

    /// True once every chunk has played out (or the downloader aborted).
    pub fn is_done(&self) -> bool {
        self.aborted || self.k >= self.video.num_chunks()
    }

    /// The buffer cap in effect: `B_max`, additionally clamped by the live
    /// schedule's `max_buffer_secs` in live mode. This is the cap both the
    /// buffer dynamics and the controller context use, so baselines that
    /// steer on `buffer_max_secs` adapt to the live cap automatically.
    fn effective_buffer_max(&self) -> f64 {
        match &self.cfg.live {
            Some(live) => self.cfg.buffer_max_secs.min(live.max_buffer_secs),
            None => self.cfg.buffer_max_secs,
        }
    }

    /// Live catch-up: while the playhead has fallen `>= max(cap, join
    /// latency) + 2L` behind the live edge (a stall pushed it back — the
    /// buffer alone can never put it there, and a DVR join starts behind
    /// the edge *by construction*, so the baseline is part of the floor),
    /// skip chunks instead of fetching them. Each skip jumps the playhead
    /// one chunk toward the edge (latency drops by exactly `L`), records a
    /// skipped [`ChunkRecord`], and consumes no wall-clock time. The last
    /// chunk is never skipped so every session still ends.
    fn live_catch_up(&mut self) {
        let Some(live) = self.cfg.live else { return };
        let l = self.video.chunk_secs();
        let join_latency = live.latency_secs(0.0, 0, 0.0, l);
        let threshold = self.effective_buffer_max().max(join_latency) + 2.0 * l;
        while self.k + 1 < self.video.num_chunks() {
            let latency = live.latency_secs(self.now, self.k, self.buffer, l);
            if latency < threshold {
                break;
            }
            self.out.records.push(ChunkRecord {
                index: self.k,
                level: self.prev_level.unwrap_or(LevelIdx(0)),
                bitrate_kbps: 0.0,
                size_kbits: 0.0,
                start_secs: self.now,
                download_secs: 0.0,
                rebuffer_secs: 0.0,
                wait_secs: 0.0,
                availability_wait_secs: 0.0,
                buffer_before_secs: self.buffer,
                buffer_after_secs: self.buffer,
                throughput_kbps: 0.0,
                prediction_kbps: None,
                retries: 0,
                wasted_kbits: 0.0,
                fault_delay_secs: 0.0,
                skipped: true,
                latency_secs: latency,
            });
            self.k += 1;
        }
    }

    /// Index of the chunk the next [`context`](Self::context)/
    /// [`apply`](Self::apply) pair concerns.
    pub fn chunk_index(&self) -> usize {
        self.k
    }

    /// The controller's view of the session for the current chunk. The
    /// first call per chunk feeds the oracle hint and caches the
    /// prediction; further calls return the same context.
    pub fn context(&mut self) -> ControllerContext<'a> {
        assert!(!self.is_done(), "context() on a finished session");
        self.live_catch_up();
        if !self.hinted {
            // Oracle predictors get the true mean upcoming throughput.
            let horizon_end = self.now + self.cfg.hint_horizon_secs.max(self.video.chunk_secs());
            let truth = self
                .trace
                .integrate_kbits_at(&mut self.hint_cursor, self.now, horizon_end)
                / (horizon_end - self.now);
            if truth > 0.0 {
                self.predictor.hint_future(truth);
            }
            self.prediction = self.predictor.predict();
            self.robust_lower = match self.cfg.robust_bound {
                crate::config::RobustBound::MaxError => self.predictor.robust_lower_bound(),
                crate::config::RobustBound::MeanError => self
                    .prediction
                    .map(|p| p / (1.0 + self.predictor.mean_error())),
            };
            self.hinted = true;
        }
        ControllerContext {
            chunk_index: self.k,
            buffer_secs: self.buffer,
            prev_level: self.prev_level,
            prediction_kbps: self.prediction,
            robust_lower_kbps: self.robust_lower,
            last_throughput_kbps: self.last_throughput,
            recent_low_buffer: self.scratch.low_buffer_history.iter().any(|&b| b),
            startup: self.k == 0,
            video: self.video,
            buffer_max_secs: self.effective_buffer_max(),
            live: self
                .cfg
                .live
                .map(|l| l.state(self.now, self.k, self.buffer, self.video.chunk_secs())),
        }
    }

    /// Plays out the decided download for the current chunk and advances
    /// buffer/QoE/clock state to the next.
    pub fn apply(&mut self, decision: Decision) {
        assert!(self.hinted, "apply() without a matching context()");
        self.hinted = false;
        let k = self.k;
        let level = decision.level;

        // Startup: establish T_s and the equivalent initial buffer credit.
        if k == 0 {
            match self.cfg.startup {
                StartupPolicy::FirstChunk => {} // handled after the download
                StartupPolicy::Fixed(ts) => {
                    assert!(ts >= 0.0, "negative fixed startup delay");
                    self.startup_secs = ts;
                    self.buffer = ts.min(self.effective_buffer_max());
                }
                StartupPolicy::Controller => {
                    let ts = decision.startup_wait_secs.unwrap_or(0.0);
                    self.startup_secs = ts;
                    self.buffer = ts.min(self.effective_buffer_max());
                }
            }
        }

        // Live mode: the chunk may not exist yet — wait for the encoder.
        // The buffer keeps draining through the wait, exactly like a slow
        // download.
        let availability_wait = match self.cfg.live {
            Some(live) => (live.available_at(k, self.video.chunk_secs()) - self.now).max(0.0),
            None => 0.0,
        };

        // Download (the simulator integrates the trace; the emulated path
        // pushes real HTTP bytes through a shaped link).
        let size_kbits = self.video.chunk_size_kbits(k, level);
        let dl_start = self.now + availability_wait;
        let outcome = self
            .downloader
            .download_outcome(k, level, size_kbits, dl_start);
        if outcome.aborted {
            // Retry budget exhausted: the chunk never arrived. The time
            // burned failing drains the buffer like a slow download — past
            // the buffer it is rebuffering (or startup delay for chunk 0) —
            // and the session ends here.
            let elapsed = availability_wait + outcome.secs;
            if k == 0 && matches!(self.cfg.startup, StartupPolicy::FirstChunk) {
                self.startup_secs = elapsed;
            } else {
                self.qoe
                    .push_rebuffer(&self.cfg.weights, (elapsed - self.buffer).max(0.0));
            }
            self.now += elapsed;
            self.out.aborted = true;
            self.out.abort_secs = outcome.secs;
            self.out.abort_retries = outcome.retries;
            self.out.abort_wasted_kbits = outcome.wasted_kbits;
            self.aborted = true;
            return;
        }
        let download_secs = outcome.secs;
        assert!(
            download_secs.is_finite() && download_secs > 0.0,
            "download of {size_kbits} kbits never completes at t={dl_start}"
        );
        let throughput = outcome.throughput_kbps;

        let mut step = advance_buffer(
            self.buffer,
            availability_wait + download_secs,
            self.video.chunk_secs(),
            self.effective_buffer_max(),
        );
        // Latency when this chunk lands: the latency at the decision plus
        // however long the playhead was frozen getting it (the raw stall,
        // before any startup re-accounting — startup freezes the playhead
        // too). Computed only in live mode so VOD stays bit-identical.
        let live_latency = self.cfg.live.map(|live| {
            live.latency_secs(self.now, k, self.buffer, self.video.chunk_secs())
                + step.rebuffer_secs
        });
        if k == 0 && matches!(self.cfg.startup, StartupPolicy::FirstChunk) {
            // Playback starts when this chunk lands: the time to get it is
            // the startup delay, not a rebuffer.
            self.startup_secs = availability_wait + download_secs;
            step.rebuffer_secs = 0.0;
        }

        self.qoe.push_chunk(
            &self.cfg.weights,
            self.video.ladder().kbps(outcome.delivered_level),
            step.rebuffer_secs,
        );
        if let Some(latency) = live_latency {
            self.qoe.push_latency(&self.cfg.weights, latency);
        }
        self.out.records.push(ChunkRecord {
            index: k,
            level: outcome.delivered_level,
            bitrate_kbps: self.video.ladder().kbps(outcome.delivered_level),
            size_kbits: outcome.delivered_kbits,
            start_secs: dl_start,
            download_secs,
            rebuffer_secs: step.rebuffer_secs,
            wait_secs: step.wait_secs,
            availability_wait_secs: availability_wait,
            buffer_before_secs: self.buffer,
            buffer_after_secs: step.next_buffer_secs,
            throughput_kbps: throughput,
            prediction_kbps: self.prediction,
            retries: outcome.retries,
            wasted_kbits: outcome.wasted_kbits,
            fault_delay_secs: outcome.fault_delay_secs,
            skipped: false,
            latency_secs: live_latency.unwrap_or(0.0),
        });

        // Bookkeeping for the next iteration.
        if self.scratch.low_buffer_history.len() == self.cfg.low_buffer_window_chunks {
            self.scratch.low_buffer_history.pop_front();
        }
        self.scratch
            .low_buffer_history
            .push_back(self.buffer < self.cfg.low_buffer_threshold_secs);
        self.predictor.observe(throughput);
        self.last_throughput = Some(throughput);
        self.now += availability_wait + download_secs + step.wait_secs;
        self.buffer = step.next_buffer_secs;
        self.prev_level = Some(outcome.delivered_level);
        self.k += 1;
    }

    /// Writes the session epilogue (startup QoE term, algorithm name,
    /// totals) into `out` and hands the predictor's error ring back to the
    /// scratch for the next session.
    pub fn finish(self, algorithm: &str) {
        let mut qoe = self.qoe;
        qoe.set_startup(&self.cfg.weights, self.startup_secs);
        self.out.algorithm.clear();
        self.out.algorithm.push_str(algorithm);
        self.out.startup_secs = self.startup_secs;
        self.out.total_secs = self.now;
        self.out.qoe = qoe;
        // Hand the predictor's error ring back for the next session.
        self.scratch.errors = self.predictor.into_parts().1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, DashJs, Festive, RateBased};
    use abr_core::{Decision, Mpc, MpcConfig};
    use abr_predictor::{HarmonicMean, NoisyOracle};
    use abr_trace::Dataset;
    use abr_video::{envivio_video, LevelIdx, LiveSchedule, QoeWeights};
    use proptest::prelude::*;

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    /// A controller that always requests the same level.
    struct Fixed(LevelIdx);
    impl BitrateController for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &ControllerContext<'_>) -> Decision {
            Decision::level(self.0)
        }
    }

    #[test]
    fn constant_trace_matches_analytic_math() {
        // 1000 kbps link, fixed 1000 kbps level: every chunk downloads in
        // exactly L seconds, so after startup the buffer stays at L and
        // there is never a rebuffer.
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert_eq!(r.records.len(), 65);
        assert!((r.startup_secs - 4.0).abs() < 1e-9, "{}", r.startup_secs);
        assert!(r.total_rebuffer_secs() < 1e-9);
        for rec in &r.records {
            assert!((rec.download_secs - 4.0).abs() < 1e-9);
            assert!((rec.throughput_kbps - 1000.0).abs() < 1e-9);
        }
        // Buffer holds at exactly one chunk after each download.
        assert!((r.records[5].buffer_after_secs - 4.0).abs() < 1e-9);
        // QoE = 65 chunks * 1000 - startup penalty.
        let expect = 65.0 * 1000.0 - 3000.0 * 4.0;
        assert!((r.qoe.qoe - expect).abs() < 1e-6, "{}", r.qoe.qoe);
    }

    #[test]
    fn fast_link_fills_buffer_and_waits() {
        // 10 Mbps link, lowest level: downloads are much faster than
        // playback, so the buffer parks at Bmax and the player idles.
        let v = envivio_video();
        let t = Trace::constant(10_000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(0));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(r.total_rebuffer_secs() < 1e-9);
        let max_buf = r
            .records
            .iter()
            .map(|x| x.buffer_after_secs)
            .fold(0.0, f64::max);
        assert!(max_buf <= 30.0 + 1e-9);
        assert!((max_buf - 30.0).abs() < 1e-6, "buffer should reach Bmax");
        assert!(r.records.iter().map(|x| x.wait_secs).sum::<f64>() > 0.0);
    }

    #[test]
    fn slow_link_high_level_rebuffers() {
        // 500 kbps link, fixed top level (3000 kbps): rebuffer every chunk.
        let v = envivio_video();
        let t = Trace::constant(500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(4));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        // Each chunk takes 24 s to download but yields 4 s of video.
        assert!(r.total_rebuffer_secs() > 100.0);
        assert!(r.qoe.qoe < 0.0, "QoE should collapse: {}", r.qoe.qoe);
    }

    #[test]
    fn fixed_startup_gives_buffer_credit() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let mut config = cfg();
        config.startup = StartupPolicy::Fixed(6.0);
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert_eq!(r.startup_secs, 6.0);
        // First chunk: 4 s download against 6 s credit -> no rebuffer.
        assert_eq!(r.records[0].rebuffer_secs, 0.0);
        assert!((r.records[0].buffer_before_secs - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_startup_shortfall_is_rebuffering() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(4)); // 12 s first download
        let mut config = cfg();
        config.startup = StartupPolicy::Fixed(2.0);
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert!((r.records[0].rebuffer_secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn controller_startup_policy_uses_fst_mpc() {
        let v = envivio_video();
        let t = Trace::constant(600.0, 400.0).unwrap();
        let mut mpc = Mpc::new(MpcConfig {
            optimize_startup: true,
            weights: QoeWeights {
                mu_s: 10.0, // cheap startup: waiting is worthwhile
                ..QoeWeights::balanced()
            },
            ..MpcConfig::paper_default()
        });
        let mut config = cfg();
        config.startup = StartupPolicy::Controller;
        config.weights = QoeWeights {
            mu_s: 10.0,
            ..QoeWeights::balanced()
        };
        let r = run_session(&mut mpc, HarmonicMean::paper_default(), &t, &v, &config);
        assert!(r.startup_secs > 0.0);
    }

    #[test]
    fn all_algorithms_complete_all_datasets() {
        let v = envivio_video();
        let config = cfg();
        for ds in Dataset::ALL {
            for trace in ds.generate(99, 3) {
                let mut algos: Vec<Box<dyn BitrateController>> = vec![
                    Box::new(RateBased::paper_default()),
                    Box::new(BufferBased::paper_default()),
                    Box::new(Festive::paper_default()),
                    Box::new(DashJs::paper_default()),
                    Box::new(Mpc::paper_default()),
                    Box::new(Mpc::robust()),
                ];
                for a in &mut algos {
                    let r = run_session(
                        a.as_mut(),
                        HarmonicMean::paper_default(),
                        &trace,
                        &v,
                        &config,
                    );
                    assert_eq!(r.records.len(), 65);
                    assert!(r.total_secs > 0.0);
                    assert!(r.qoe.qoe.is_finite());
                    // Buffer invariant throughout.
                    for rec in &r.records {
                        assert!(rec.buffer_after_secs >= -1e-9);
                        assert!(rec.buffer_after_secs <= 30.0 + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_hint_drives_perfect_predictions() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, NoisyOracle::perfect(), &t, &v, &cfg());
        // Constant trace: hints equal measured throughput, so error is 0.
        let err = r.mean_prediction_error().unwrap();
        assert!(err < 1e-9, "error {err}");
        assert!(r.records[0].prediction_kbps.is_some());
    }

    #[test]
    fn harmonic_mean_has_no_prediction_for_first_chunk() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(0));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert_eq!(r.records[0].prediction_kbps, None);
        assert!(r.records[1].prediction_kbps.is_some());
    }

    #[test]
    fn wall_clock_is_downloads_plus_waits() {
        let v = envivio_video();
        let t = Trace::constant(2000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        let sum: f64 = r
            .records
            .iter()
            .map(|x| x.download_secs + x.wait_secs)
            .sum();
        assert!((r.total_secs - sum).abs() < 1e-9);
    }

    #[test]
    fn mean_error_bound_is_less_conservative() {
        // On a volatile trace, the mean-error bound sits above the
        // max-error bound, so RobustMPC(mean) streams at least as high on
        // average as RobustMPC(max).
        let v = envivio_video();
        let t = Trace::new(vec![
            (20.0, 2500.0),
            (10.0, 700.0),
            (20.0, 2500.0),
            (10.0, 500.0),
        ])
        .unwrap();
        let mut cfg_max = cfg();
        cfg_max.robust_bound = crate::config::RobustBound::MaxError;
        let mut cfg_mean = cfg();
        cfg_mean.robust_bound = crate::config::RobustBound::MeanError;
        let mut a = Mpc::robust();
        let r_max = run_session(&mut a, HarmonicMean::paper_default(), &t, &v, &cfg_max);
        let mut b = Mpc::robust();
        let r_mean = run_session(&mut b, HarmonicMean::paper_default(), &t, &v, &cfg_mean);
        assert!(
            r_mean.avg_bitrate_kbps() >= r_max.avg_bitrate_kbps() - 1e-9,
            "mean {} vs max {}",
            r_mean.avg_bitrate_kbps(),
            r_max.avg_bitrate_kbps()
        );
    }

    #[test]
    fn mpc_beats_fixed_top_level_on_volatile_trace() {
        // Sanity: adaptation must beat the naive "always max" policy when
        // the link cannot sustain the max.
        let v = envivio_video();
        let t = Trace::new(vec![(30.0, 2500.0), (30.0, 600.0)]).unwrap();
        let mut top = Fixed(LevelIdx(4));
        let r_top = run_session(&mut top, HarmonicMean::paper_default(), &t, &v, &cfg());
        let mut mpc = Mpc::robust();
        let r_mpc = run_session(&mut mpc, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(
            r_mpc.qoe.qoe > r_top.qoe.qoe,
            "MPC {} vs fixed-top {}",
            r_mpc.qoe.qoe,
            r_top.qoe.qoe
        );
    }

    #[test]
    fn vod_sessions_never_wait_for_availability() {
        let v = envivio_video();
        let t = Trace::constant(2000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(r.records.iter().all(|x| x.availability_wait_secs == 0.0));
    }

    #[test]
    fn live_mode_paces_at_the_encoder() {
        // Infinite-feeling bandwidth, 8 s behind live: downloads are nearly
        // instant, so the player is gated by chunk availability — exactly
        // one chunk per L seconds — and the buffer parks near the offset.
        let v = envivio_video();
        let t = Trace::constant(100_000.0, 60.0).unwrap();
        let mut c = Fixed(LevelIdx(2));
        let mut config = cfg();
        // Joined 8 s behind the edge: chunk k releases at (k+1)·4 − 8,
        // i.e. encode_delay = −4 in wall-schedule terms.
        config.live = Some(LiveSchedule {
            encode_delay_secs: -4.0,
            max_buffer_secs: 30.0,
        });
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert!(r.total_rebuffer_secs() < 1e-6);
        // Mid-session: every chunk waits ~L for the encoder.
        for rec in &r.records[3..60] {
            assert!(
                rec.availability_wait_secs > 3.0,
                "chunk {} waited only {}",
                rec.index,
                rec.availability_wait_secs
            );
            // The buffer can never exceed what the encoder has produced.
            assert!(
                rec.buffer_after_secs <= 8.0 + 4.0 + 1e-6,
                "buffer {} outran the live edge",
                rec.buffer_after_secs
            );
        }
        // Wall clock ~ when the last chunk is encoded: 65*4 - 8 = 252 s.
        assert!(r.total_secs >= 251.9, "{}", r.total_secs);
    }

    #[test]
    fn live_mode_small_offset_rebuffers_on_dips() {
        // 4 s behind live with a mid-stream dip: the player cannot build a
        // protective buffer (the encoder hasn't produced it), so the dip
        // hits playback directly.
        let v = envivio_video();
        let t = Trace::new(vec![(60.0, 3000.0), (20.0, 400.0), (120.0, 3000.0)]).unwrap();
        let mut live_cfg = cfg();
        // Joined right at the edge: chunk k releases at k·4 exactly.
        live_cfg.live = Some(LiveSchedule {
            encode_delay_secs: 0.0,
            max_buffer_secs: 30.0,
        });
        let mut c1 = Fixed(LevelIdx(2));
        let live = run_session(&mut c1, HarmonicMean::paper_default(), &t, &v, &live_cfg);
        let mut c2 = Fixed(LevelIdx(2));
        let vod = run_session(&mut c2, HarmonicMean::paper_default(), &t, &v, &cfg());
        assert!(
            live.total_rebuffer_secs() > vod.total_rebuffer_secs(),
            "live {} should rebuffer more than VOD {}",
            live.total_rebuffer_secs(),
            vod.total_rebuffer_secs()
        );
        assert!(live.total_rebuffer_secs() > 1.0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_sessions() {
        // One SessionScratch/SessionResult pair threaded through a mixed bag
        // of sessions must reproduce exactly what fresh-allocation runs
        // produce, byte for byte.
        let v = envivio_video();
        let traces = [
            Trace::constant(1200.0, 60.0).unwrap(),
            Trace::new(vec![(20.0, 2500.0), (10.0, 700.0), (15.0, 0.0), (20.0, 1800.0)]).unwrap(),
            Trace::new(vec![(30.0, 600.0), (30.0, 3000.0)]).unwrap(),
        ];
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        for trace in &traces {
            for bound in [
                crate::config::RobustBound::MaxError,
                crate::config::RobustBound::MeanError,
            ] {
                let mut config = cfg();
                config.robust_bound = bound;
                let mut a = Mpc::robust();
                let fresh =
                    run_session(&mut a, HarmonicMean::paper_default(), trace, &v, &config);
                let mut b = Mpc::robust();
                run_session_with(
                    &mut scratch,
                    &mut out,
                    &mut b,
                    HarmonicMean::paper_default(),
                    trace,
                    &v,
                    &config,
                );
                assert_eq!(fresh, out);
                assert_eq!(
                    fresh.qoe.qoe.to_bits(),
                    out.qoe.qoe.to_bits(),
                    "reused-scratch QoE drifted"
                );
                for (x, y) in fresh.records.iter().zip(&out.records) {
                    assert_eq!(x.download_secs.to_bits(), y.download_secs.to_bits());
                    assert_eq!(x.buffer_after_secs.to_bits(), y.buffer_after_secs.to_bits());
                }
            }
        }
    }

    #[test]
    fn stepper_lockstep_interleaving_is_bit_identical() {
        // Sessions advanced chunk-by-chunk in lockstep through one shared
        // controller (batched decisions per tick) must equal the same
        // sessions run back to back — the equivalence the harness batch
        // path and the serve-side aggregating proxy rely on.
        let v = envivio_video();
        let config = cfg();
        let traces = [
            Trace::constant(1200.0, 60.0).unwrap(),
            Trace::new(vec![(20.0, 2500.0), (10.0, 700.0), (20.0, 1800.0)]).unwrap(),
            Trace::new(vec![(30.0, 600.0), (30.0, 3000.0)]).unwrap(),
        ];
        let sequential: Vec<SessionResult> = traces
            .iter()
            .map(|t| {
                let mut c = Mpc::robust();
                run_session(&mut c, HarmonicMean::paper_default(), t, &v, &config)
            })
            .collect();

        let mut shared = Mpc::robust();
        shared.reset();
        let mut scratches: Vec<SessionScratch> =
            traces.iter().map(|_| SessionScratch::new()).collect();
        let mut outs: Vec<SessionResult> =
            traces.iter().map(|_| SessionResult::default()).collect();
        {
            let mut steppers: Vec<_> = scratches
                .iter_mut()
                .zip(outs.iter_mut())
                .zip(traces.iter())
                .map(|((scratch, out), t)| {
                    SessionStepper::start(
                        scratch,
                        out,
                        HarmonicMean::paper_default(),
                        TraceDownloader::new(t),
                        t,
                        &v,
                        &config,
                    )
                })
                .collect();
            let mut decisions = Vec::new();
            while steppers.iter().any(|s| !s.is_done()) {
                let mut live: Vec<_> =
                    steppers.iter_mut().filter(|s| !s.is_done()).collect();
                let ctxs: Vec<ControllerContext> =
                    live.iter_mut().map(|s| s.context()).collect();
                shared.decide_batch(&ctxs, &mut decisions);
                assert_eq!(decisions.len(), live.len());
                for (s, d) in live.iter_mut().zip(decisions.iter()) {
                    assert!(d.level.get() < v.ladder().len());
                    s.apply(*d);
                }
            }
            let name = shared.name();
            for s in steppers {
                s.finish(name);
            }
        }
        for (seq, lock) in sequential.iter().zip(&outs) {
            assert_eq!(seq, lock);
            assert_eq!(
                seq.qoe.qoe.to_bits(),
                lock.qoe.qoe.to_bits(),
                "lockstep QoE drifted"
            );
            for (x, y) in seq.records.iter().zip(&lock.records) {
                assert_eq!(x.download_secs.to_bits(), y.download_secs.to_bits());
                assert_eq!(x.buffer_after_secs.to_bits(), y.buffer_after_secs.to_bits());
            }
        }
    }

    #[test]
    fn stepper_context_is_idempotent_within_a_chunk() {
        // Repeated context() calls before apply() must return the same
        // view — the oracle hint is applied once per chunk, not per call.
        let v = envivio_video();
        let t = Trace::new(vec![(20.0, 2500.0), (10.0, 700.0), (20.0, 1800.0)]).unwrap();
        let config = cfg();
        let mut c = Fixed(LevelIdx(2));
        let reference = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);

        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        let mut stepper = SessionStepper::start(
            &mut scratch,
            &mut out,
            HarmonicMean::paper_default(),
            TraceDownloader::new(&t),
            &t,
            &v,
            &config,
        );
        while !stepper.is_done() {
            let first = stepper.context();
            let second = stepper.context();
            assert_eq!(first.chunk_index, second.chunk_index);
            assert_eq!(
                first.prediction_kbps.map(f64::to_bits),
                second.prediction_kbps.map(f64::to_bits)
            );
            assert_eq!(
                first.robust_lower_kbps.map(f64::to_bits),
                second.robust_lower_kbps.map(f64::to_bits)
            );
            assert_eq!(first.chunk_index, stepper.chunk_index());
            stepper.apply(Decision::level(LevelIdx(2)));
        }
        stepper.finish("fixed");
        assert_eq!(reference, out);
    }

    /// Wraps [`TraceDownloader`] but reports a fault-laden abort at one
    /// chosen chunk index — the sim-side stand-in for a hostile network.
    struct AbortAt<'a> {
        inner: TraceDownloader<'a>,
        at: usize,
        abort_secs: f64,
    }
    impl ChunkDownloader for AbortAt<'_> {
        fn download_secs(
            &mut self,
            index: usize,
            level: LevelIdx,
            size_kbits: f64,
            start_secs: f64,
        ) -> f64 {
            self.inner.download_secs(index, level, size_kbits, start_secs)
        }
        fn download_outcome(
            &mut self,
            index: usize,
            level: LevelIdx,
            size_kbits: f64,
            start_secs: f64,
        ) -> DownloadOutcome {
            if index == self.at {
                DownloadOutcome {
                    secs: self.abort_secs,
                    delivered_level: level,
                    delivered_kbits: 0.0,
                    throughput_kbps: 0.0,
                    retries: 3,
                    wasted_kbits: 42.0,
                    fault_delay_secs: self.abort_secs,
                    aborted: true,
                }
            } else {
                DownloadOutcome::clean(
                    level,
                    size_kbits,
                    self.download_secs(index, level, size_kbits, start_secs),
                )
            }
        }
    }

    #[test]
    fn abort_truncates_session_with_rebuffer_accounting() {
        let v = envivio_video();
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let config = cfg();
        // Plain run, to learn the buffer level going into chunk 5.
        let mut c = Fixed(LevelIdx(2));
        let plain = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        let buffer_before = plain.records[5].buffer_before_secs;

        let abort_secs = 12.5;
        let mut downloader = AbortAt {
            inner: TraceDownloader::new(&t),
            at: 5,
            abort_secs,
        };
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        let mut c2 = Fixed(LevelIdx(2));
        run_session_core(
            &mut scratch,
            &mut out,
            &mut c2,
            HarmonicMean::paper_default(),
            &mut downloader,
            &t,
            &v,
            &config,
        );
        assert_eq!(out.records.len(), 5, "session stops at the aborted chunk");
        assert!(out.aborted);
        assert_eq!(out.abort_secs, abort_secs);
        assert_eq!(out.abort_retries, 3);
        assert_eq!(out.abort_wasted_kbits, 42.0);
        assert_eq!(out.total_retries(), 3);
        // The first 5 chunks are untouched by the abort.
        for (a, b) in out.records.iter().zip(&plain.records) {
            assert_eq!(a, b);
        }
        // Rebuffer: the failed 12.5 s drained the buffer, the rest stalled
        // playback. One extra rebuffer event, charged at mu + mu_event.
        let expect_rebuf = (abort_secs - buffer_before).max(0.0);
        assert!(expect_rebuf > 0.0, "test should exercise a real stall");
        let plain5: f64 = plain.records[..5].iter().map(|r| r.rebuffer_secs).sum();
        assert!(
            (out.qoe.total_rebuffer_secs - (plain5 + expect_rebuf)).abs() < 1e-9,
            "rebuffer {} vs expected {}",
            out.qoe.total_rebuffer_secs,
            plain5 + expect_rebuf
        );
        assert!(out.qoe.qoe.is_finite());
        // An aborted *first* chunk under FirstChunk startup is startup
        // delay, not rebuffering.
        let mut first = AbortAt {
            inner: TraceDownloader::new(&t),
            at: 0,
            abort_secs,
        };
        let mut c3 = Fixed(LevelIdx(2));
        run_session_core(
            &mut scratch,
            &mut out,
            &mut c3,
            HarmonicMean::paper_default(),
            &mut first,
            &t,
            &v,
            &config,
        );
        assert!(out.aborted);
        assert!(out.records.is_empty());
        assert_eq!(out.startup_secs, abort_secs);
        assert_eq!(out.qoe.total_rebuffer_secs, 0.0);
    }

    #[test]
    fn live_cap_limits_buffer_and_context() {
        // A 6 s live cap on a fast link: the buffer parks at the cap, never
        // at the 30 s VOD Bmax, and latency settles near L + buffer.
        let v = envivio_video();
        let t = Trace::constant(20_000.0, 60.0).unwrap();
        let mut config = cfg();
        config.live = Some(LiveSchedule {
            encode_delay_secs: -20.0, // deep DVR window: availability never gates
            max_buffer_secs: 6.0,
        });
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert!(r.total_rebuffer_secs() < 1e-6);
        let max_buf = r
            .records
            .iter()
            .map(|x| x.buffer_after_secs)
            .fold(0.0, f64::max);
        assert!(max_buf <= 6.0 + 1e-9, "cap violated: {max_buf}");
        assert!((max_buf - 6.0).abs() < 1e-6, "buffer should park at the cap");
        // Every fetched chunk carries a latency sample.
        assert!(r.records.iter().all(|x| x.latency_secs > 0.0));
        assert!(r.mean_latency_secs().is_some());
        assert_eq!(r.skipped_chunks(), 0);
    }

    #[test]
    fn live_stall_triggers_catch_up_skips() {
        // A long mid-stream outage at the live edge: latency blows past
        // cap + 2L, so the player skips chunks to catch back up. Skips are
        // recorded, consume no wall-clock time, and drop latency by L each.
        let v = envivio_video();
        let t = Trace::new(vec![(40.0, 3000.0), (30.0, 1.0), (300.0, 3000.0)]).unwrap();
        let mut config = cfg();
        config.live = Some(LiveSchedule {
            encode_delay_secs: 0.0,
            max_buffer_secs: 8.0,
        });
        let mut c = Fixed(LevelIdx(0));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        let skips = r.skipped_chunks();
        assert!(skips > 0, "the outage should force catch-up skips");
        // Indices still cover each chunk exactly once, in order.
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.index, i);
        }
        // Skipped records are pure markers.
        for rec in r.records.iter().filter(|x| x.skipped) {
            assert_eq!(rec.download_secs, 0.0);
            assert_eq!(rec.size_kbits, 0.0);
            assert_eq!(rec.rebuffer_secs, 0.0);
        }
        // After catch-up the session returns below the skip threshold.
        let last = r.records.last().unwrap();
        assert!(!last.skipped);
        assert!(last.latency_secs < 8.0 + 2.0 * 4.0);
        // The QoE total reflects the latency accounting.
        assert!(r.qoe.total_latency_secs > 0.0);
    }

    #[test]
    fn vod_qoe_ignores_latency_fields() {
        // VOD sessions never call push_latency: total_latency_secs stays 0
        // even with a non-zero w_lat configured.
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let mut config = cfg();
        config.weights.w_lat = 100.0;
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
        assert_eq!(r.qoe.total_latency_secs, 0.0);
        assert_eq!(r.mean_latency_secs(), None);
        let mut plain_cfg = cfg();
        plain_cfg.weights.w_lat = 0.0;
        let mut c2 = Fixed(LevelIdx(1));
        let plain = run_session(&mut c2, HarmonicMean::paper_default(), &t, &v, &plain_cfg);
        assert_eq!(r.qoe.qoe.to_bits(), plain.qoe.qoe.to_bits());
    }

    #[test]
    fn live_mpc_holds_lower_latency_than_buffer_based_weighting() {
        // Smoke the full live MPC path end to end: RobustMPC with a latency
        // weight completes a live session near the edge and records finite
        // latency for every chunk.
        let v = envivio_video();
        let t = Trace::new(vec![(30.0, 2500.0), (20.0, 900.0), (60.0, 2500.0)]).unwrap();
        let mut config = cfg();
        config.live = Some(LiveSchedule {
            encode_delay_secs: 1.0,
            max_buffer_secs: 8.0,
        });
        config.weights.w_lat = 50.0;
        let mut mpc = Mpc::robust();
        let r = run_session(&mut mpc, HarmonicMean::paper_default(), &t, &v, &config);
        assert_eq!(
            r.records.len(),
            65,
            "live session must account every chunk (fetched or skipped)"
        );
        assert!(r.qoe.qoe.is_finite());
        assert!(r.records.iter().all(|x| x.latency_secs.is_finite()));
        assert!(r.qoe.total_latency_secs > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Live skip accounting conserves playhead monotonicity: across any
        /// live session the playhead at each record never moves backward,
        /// chunk indices cover 0..n exactly once, and latency samples are
        /// non-negative.
        #[test]
        fn live_playhead_monotone_across_skips(
            delay in -8.0f64..8.0,
            cap in 4.0f64..16.0,
            rates in proptest::collection::vec(1.0f64..4000.0, 3..7),
        ) {
            let v = envivio_video();
            let segments: Vec<(f64, f64)> = rates.iter().map(|&r| (25.0, r)).collect();
            let t = Trace::new(segments).unwrap();
            let mut config = cfg();
            config.live = Some(LiveSchedule {
                encode_delay_secs: delay,
                max_buffer_secs: cap,
            });
            config.weights.w_lat = 10.0;
            let mut c = Mpc::robust();
            let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &config);
            let mut prev_playhead = f64::NEG_INFINITY;
            for (i, rec) in r.records.iter().enumerate() {
                prop_assert_eq!(rec.index, i, "indices must cover every chunk in order");
                let playhead = rec.index as f64 * v.chunk_secs() - rec.buffer_before_secs;
                prop_assert!(
                    playhead >= prev_playhead - 1e-9,
                    "playhead moved backward at chunk {}: {} -> {}",
                    i, prev_playhead, playhead
                );
                prev_playhead = playhead;
                prop_assert!(rec.latency_secs >= -1e-9);
                prop_assert!(rec.buffer_after_secs <= cap.min(30.0) + 1e-9);
                if rec.skipped {
                    prop_assert_eq!(rec.download_secs, 0.0);
                    prop_assert_eq!(rec.throughput_kbps, 0.0);
                }
            }
        }
    }

    #[test]
    fn per_chunk_throughput_consistent_with_trace() {
        let v = envivio_video();
        let t = Trace::new(vec![(20.0, 800.0), (20.0, 3000.0)]).unwrap();
        let mut c = Fixed(LevelIdx(1));
        let r = run_session(&mut c, HarmonicMean::paper_default(), &t, &v, &cfg());
        for rec in &r.records {
            let integrated =
                t.integrate_kbits(rec.start_secs, rec.start_secs + rec.download_secs);
            assert!(
                (integrated - rec.size_kbits).abs() < 1e-6 * rec.size_kbits.max(1.0),
                "chunk {} downloaded {} kbits but trace delivered {integrated}",
                rec.index,
                rec.size_kbits
            );
        }
    }
}
