//! Simulator configuration.

use abr_video::{LiveSchedule, QoeWeights};
use serde::{Deserialize, Serialize};

/// How the startup delay `T_s` is determined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StartupPolicy {
    /// Playback begins the moment the first chunk finishes downloading
    /// (`T_s` = first download time). The default, applied to every
    /// algorithm in comparisons.
    FirstChunk,
    /// Playback begins after a fixed delay; the player accumulates buffer
    /// credit during the wait (Eq. 10's `B_1 = T_s`). If the first chunk
    /// takes longer than the delay, the shortfall counts as rebuffering.
    /// Used by the startup-delay sensitivity study (Figure 11d).
    Fixed(f64),
    /// The controller's first decision supplies `T_s` (MPC's `fst_mpc`);
    /// controllers that return no startup directive fall back to
    /// `FirstChunk` behaviour.
    Controller,
}

/// How RobustMPC's throughput lower bound is derived from tracked
/// prediction errors — `prediction / (1 + err)` with `err` chosen below.
/// The paper uses the maximum error over the past 5 chunks; the mean-error
/// variant is the less conservative alternative the `ablation` experiment
/// compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustBound {
    /// `err` = maximum absolute percentage error in the window (paper).
    MaxError,
    /// `err` = mean absolute percentage error in the window.
    MeanError,
}

/// Full simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Buffer capacity `B_max` in seconds (the paper uses 30 s).
    pub buffer_max_secs: f64,
    /// Live-streaming mode: when set, chunk `k` only becomes fetchable at
    /// `k·L + encode_delay` wall-clock seconds, the buffer is additionally
    /// capped at the schedule's `max_buffer_secs`, controllers see a
    /// [`abr_video::LiveState`] snapshot, and per-chunk live-edge latency
    /// is accounted (`None` = video-on-demand, the paper's setting).
    #[serde(default)]
    pub live: Option<LiveSchedule>,
    /// Startup policy.
    pub startup: StartupPolicy,
    /// QoE weights used for session accounting.
    pub weights: QoeWeights,
    /// Window (chunks) for tracking prediction errors (RobustMPC bound).
    pub error_window: usize,
    /// Which error statistic feeds the robust throughput lower bound.
    #[serde(default = "default_robust_bound")]
    pub robust_bound: RobustBound,
    /// Buffer level under which a chunk start is flagged "low buffer"
    /// (feeds the dash.js insufficient-buffer rule).
    pub low_buffer_threshold_secs: f64,
    /// A chunk sees `recent_low_buffer` if any of the last this-many chunk
    /// starts were below the threshold.
    pub low_buffer_window_chunks: usize,
    /// Horizon (seconds) over which oracle predictors are told the true
    /// mean upcoming throughput — matches the MPC look-ahead of 5 chunks
    /// of 4 s by default.
    pub hint_horizon_secs: f64,
}

impl SimConfig {
    /// The paper's evaluation defaults.
    pub fn paper_default() -> Self {
        Self {
            buffer_max_secs: 30.0,
            live: None,
            startup: StartupPolicy::FirstChunk,
            weights: QoeWeights::balanced(),
            error_window: 5,
            robust_bound: RobustBound::MaxError,
            low_buffer_threshold_secs: 8.0,
            low_buffer_window_chunks: 3,
            hint_horizon_secs: 20.0,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

fn default_robust_bound() -> RobustBound {
    RobustBound::MaxError
}
