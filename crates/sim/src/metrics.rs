//! Per-chunk logs and per-session results — the simulator-side counterpart
//! of the logging functions the paper added to `BufferController`
//! ("a complete log of the state of the player, including buffer level,
//! bitrates, rebuffer time, predicted/actual throughput", Section 6).

use abr_video::{LevelIdx, QoeBreakdown};
use serde::{Deserialize, Serialize};

/// Everything recorded about one chunk download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Chunk index `k` (0-based).
    pub index: usize,
    /// Chosen ladder level.
    pub level: LevelIdx,
    /// Nominal bitrate of the chosen level, kbps.
    pub bitrate_kbps: f64,
    /// Chunk size at the chosen level, kilobits.
    pub size_kbits: f64,
    /// Wall-clock time the download started, seconds.
    pub start_secs: f64,
    /// Download duration `d_k/C_k`, seconds.
    pub download_secs: f64,
    /// Rebuffering incurred by this chunk, seconds.
    pub rebuffer_secs: f64,
    /// Idle wait after this chunk (buffer full), seconds.
    pub wait_secs: f64,
    /// Time spent waiting for the chunk to *exist* before the download
    /// could start (live mode; always 0 for video-on-demand).
    #[serde(default)]
    pub availability_wait_secs: f64,
    /// Buffer occupancy when the download started (`B_k`), seconds.
    pub buffer_before_secs: f64,
    /// Buffer occupancy when the next download starts (`B_{k+1}`), seconds.
    pub buffer_after_secs: f64,
    /// Measured average throughput over the download (`C_k`), kbps.
    pub throughput_kbps: f64,
    /// The predictor's forecast in effect for this decision, if any.
    pub prediction_kbps: Option<f64>,
    /// Re-requests this chunk needed before it was delivered (0 on the
    /// fault-free path).
    #[serde(default)]
    pub retries: u32,
    /// Kilobits received on failed attempts and thrown away.
    #[serde(default)]
    pub wasted_kbits: f64,
    /// Seconds of `download_secs` lost to failed attempts and backoff
    /// waits (0 on the fault-free path).
    #[serde(default)]
    pub fault_delay_secs: f64,
    /// Live catch-up: the player skipped this chunk instead of fetching it
    /// (the playhead jumped one chunk toward the live edge; `download_secs`,
    /// `size_kbits` and `throughput_kbps` are all 0). Skipped-at-default
    /// serialization keeps VOD records byte-identical to pre-live output.
    #[serde(default, skip_serializing_if = "is_false")]
    pub skipped: bool,
    /// Live-edge latency held when this chunk landed (or was skipped),
    /// seconds. Always 0 for video-on-demand.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub latency_secs: f64,
}

/// `skip_serializing_if` helper for the live-only bool field.
fn is_false(v: &bool) -> bool {
    !*v
}

/// `skip_serializing_if` helper for the live-only latency field.
fn is_zero_f64(v: &f64) -> bool {
    *v == 0.0
}

impl ChunkRecord {
    /// Absolute percentage prediction error for this chunk, if a prediction
    /// existed: `|Ĉ − C_k| / C_k`.
    pub fn prediction_error(&self) -> Option<f64> {
        self.prediction_kbps
            .map(|p| (p - self.throughput_kbps).abs() / self.throughput_kbps)
    }

    /// Signed percentage prediction error (`> 0` means over-estimation).
    pub fn signed_prediction_error(&self) -> Option<f64> {
        self.prediction_kbps
            .map(|p| (p - self.throughput_kbps) / self.throughput_kbps)
    }
}

/// The outcome of one simulated streaming session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Controller name ("RobustMPC", "BB", …).
    pub algorithm: String,
    /// Per-chunk log.
    pub records: Vec<ChunkRecord>,
    /// Startup delay `T_s`, seconds.
    pub startup_secs: f64,
    /// Wall-clock session length (downloads + waits), seconds.
    pub total_secs: f64,
    /// Accumulated QoE terms (Eq. 5).
    pub qoe: QoeBreakdown,
    /// The player gave up: a chunk's retry budget was exhausted (or too
    /// many consecutive attempts failed) and the session ended early. The
    /// abandoned chunk has no [`ChunkRecord`]; its accounting lands in the
    /// `abort_*` fields below.
    #[serde(default)]
    pub aborted: bool,
    /// Wall-clock seconds burned failing on the abandoned chunk.
    #[serde(default)]
    pub abort_secs: f64,
    /// Re-requests burned on the abandoned chunk.
    #[serde(default)]
    pub abort_retries: u32,
    /// Kilobits received for the abandoned chunk and thrown away.
    #[serde(default)]
    pub abort_wasted_kbits: f64,
}

impl SessionResult {
    /// Total rebuffering time across all chunks, seconds.
    pub fn total_rebuffer_secs(&self) -> f64 {
        self.records.iter().map(|r| r.rebuffer_secs).sum()
    }

    /// Number of chunks that incurred any rebuffering.
    pub fn rebuffer_events(&self) -> usize {
        self.records.iter().filter(|r| r.rebuffer_secs > 1e-9).count()
    }

    /// Total re-requests across the session, including those burned on an
    /// aborted chunk.
    pub fn total_retries(&self) -> u32 {
        self.records.iter().map(|r| r.retries).sum::<u32>() + self.abort_retries
    }

    /// Total kilobits received on failed attempts and thrown away,
    /// including the aborted chunk's.
    pub fn total_wasted_kbits(&self) -> f64 {
        self.records.iter().map(|r| r.wasted_kbits).sum::<f64>() + self.abort_wasted_kbits
    }

    /// Total seconds lost to failed attempts and backoff waits, including
    /// the time burned failing on an aborted chunk.
    pub fn total_fault_delay_secs(&self) -> f64 {
        self.records.iter().map(|r| r.fault_delay_secs).sum::<f64>() + self.abort_secs
    }

    /// Number of chunks skipped for live catch-up (always 0 in VOD).
    pub fn skipped_chunks(&self) -> usize {
        self.records.iter().filter(|r| r.skipped).count()
    }

    /// Mean live-edge latency over the fetched (non-skipped) chunks,
    /// seconds. `None` for VOD sessions (no live latency was accounted) and
    /// for sessions with no fetched chunks.
    pub fn mean_latency_secs(&self) -> Option<f64> {
        let fetched: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.skipped)
            .map(|r| r.latency_secs)
            .collect();
        if fetched.is_empty() || fetched.iter().all(|&l| l == 0.0) {
            None
        } else {
            Some(fetched.iter().sum::<f64>() / fetched.len() as f64)
        }
    }

    /// Largest live-edge latency any chunk held, seconds (0 for VOD).
    pub fn max_latency_secs(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.latency_secs)
            .fold(0.0, f64::max)
    }

    /// Average per-chunk bitrate, kbps (Figures 9/10, left panels).
    pub fn avg_bitrate_kbps(&self) -> f64 {
        self.qoe.avg_bitrate_kbps()
    }

    /// Average per-transition bitrate change, kbps (Figures 9/10, middle).
    pub fn avg_bitrate_change_kbps(&self) -> f64 {
        self.qoe.avg_bitrate_change_kbps()
    }

    /// Mean absolute percentage prediction error over the session (the
    /// Figure 7 right-panel statistic). `None` if no chunk had a prediction.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .records
            .iter()
            .filter_map(ChunkRecord::prediction_error)
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Fraction of predicted chunks whose prediction over-estimated the
    /// actual throughput (the paper reports >20 % over-estimation frequency
    /// on HSDPA).
    pub fn overestimate_fraction(&self) -> Option<f64> {
        let signed: Vec<f64> = self
            .records
            .iter()
            .filter_map(ChunkRecord::signed_prediction_error)
            .collect();
        if signed.is_empty() {
            None
        } else {
            Some(signed.iter().filter(|e| **e > 0.0).count() as f64 / signed.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::QoeWeights;

    fn record(pred: Option<f64>, actual: f64, rebuf: f64) -> ChunkRecord {
        ChunkRecord {
            index: 0,
            level: LevelIdx(0),
            bitrate_kbps: 350.0,
            size_kbits: 1400.0,
            start_secs: 0.0,
            download_secs: 1.0,
            rebuffer_secs: rebuf,
            wait_secs: 0.0,
            availability_wait_secs: 0.0,
            buffer_before_secs: 5.0,
            buffer_after_secs: 8.0,
            throughput_kbps: actual,
            prediction_kbps: pred,
            retries: 0,
            wasted_kbits: 0.0,
            fault_delay_secs: 0.0,
            skipped: false,
            latency_secs: 0.0,
        }
    }

    #[test]
    fn prediction_error_math() {
        let r = record(Some(1200.0), 1000.0, 0.0);
        assert!((r.prediction_error().unwrap() - 0.2).abs() < 1e-12);
        assert!((r.signed_prediction_error().unwrap() - 0.2).abs() < 1e-12);
        let under = record(Some(800.0), 1000.0, 0.0);
        assert!((under.signed_prediction_error().unwrap() + 0.2).abs() < 1e-12);
        assert_eq!(record(None, 1000.0, 0.0).prediction_error(), None);
    }

    #[test]
    fn session_aggregates() {
        let w = QoeWeights::balanced();
        let records = vec![
            record(None, 1000.0, 0.0),
            record(Some(1100.0), 1000.0, 0.5),
            record(Some(900.0), 1000.0, 0.0),
        ];
        let mut qoe = QoeBreakdown::default();
        for r in &records {
            qoe.push_chunk(&w, r.bitrate_kbps, r.rebuffer_secs);
        }
        let s = SessionResult {
            algorithm: "test".into(),
            records,
            startup_secs: 1.0,
            total_secs: 3.0,
            qoe,
            ..SessionResult::default()
        };
        assert!((s.total_rebuffer_secs() - 0.5).abs() < 1e-12);
        assert_eq!(s.rebuffer_events(), 1);
        assert!((s.mean_prediction_error().unwrap() - 0.1).abs() < 1e-12);
        assert!((s.overestimate_fraction().unwrap() - 0.5).abs() < 1e-12);
        assert!((s.avg_bitrate_kbps() - 350.0).abs() < 1e-12);
        assert_eq!(s.avg_bitrate_change_kbps(), 0.0);
    }

    #[test]
    fn live_aggregates_track_skips_and_latency() {
        let mut a = record(None, 1000.0, 0.0);
        a.latency_secs = 6.0;
        let mut b = record(None, 1000.0, 0.0);
        b.skipped = true;
        b.latency_secs = 10.0;
        let mut c = record(None, 1000.0, 0.0);
        c.latency_secs = 8.0;
        let s = SessionResult {
            algorithm: "test".into(),
            records: vec![a, b, c],
            ..SessionResult::default()
        };
        assert_eq!(s.skipped_chunks(), 1);
        // Mean over the two fetched chunks only; max over all records.
        assert!((s.mean_latency_secs().unwrap() - 7.0).abs() < 1e-12);
        assert!((s.max_latency_secs() - 10.0).abs() < 1e-12);
        // VOD sessions (all-zero latency) report no mean latency.
        let vod = SessionResult {
            records: vec![record(None, 1000.0, 0.0)],
            ..SessionResult::default()
        };
        assert_eq!(vod.mean_latency_secs(), None);
        assert_eq!(vod.max_latency_secs(), 0.0);
        assert_eq!(vod.skipped_chunks(), 0);
    }

    #[test]
    fn fault_aggregates_include_the_aborted_chunk() {
        let mut r0 = record(None, 1000.0, 0.0);
        r0.retries = 2;
        r0.wasted_kbits = 80.0;
        r0.fault_delay_secs = 1.5;
        let s = SessionResult {
            algorithm: "test".into(),
            records: vec![r0],
            aborted: true,
            abort_secs: 12.0,
            abort_retries: 4,
            abort_wasted_kbits: 20.0,
            ..SessionResult::default()
        };
        assert_eq!(s.total_retries(), 6);
        assert!((s.total_wasted_kbits() - 100.0).abs() < 1e-12);
        assert!((s.total_fault_delay_secs() - 13.5).abs() < 1e-12);
        // The fault-free default stays all-zero.
        let clean = SessionResult::default();
        assert!(!clean.aborted);
        assert_eq!(clean.total_retries(), 0);
        assert_eq!(clean.total_wasted_kbits(), 0.0);
    }
}
