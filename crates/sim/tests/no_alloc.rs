//! Proves the session engine is allocation-free in steady state: after one
//! warm-up session has sized the scratch rings and the output buffers,
//! further `run_session_with` calls perform zero heap allocations.
//!
//! Uses allocation-free components (BufferBased/RateBased controllers, the
//! `LastSample` predictor) so the only possible allocations are the session
//! engine's own — which is exactly what the test pins to zero.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator cannot interfere with any other test.

use abr_baselines::{BufferBased, RateBased};
use abr_predictor::LastSample;
use abr_sim::{run_session_with, SessionResult, SessionScratch, SimConfig};
use abr_trace::Trace;
use abr_video::envivio_video;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global, so measured sections from concurrently
/// running tests would pollute each other; this lock serializes them.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn steady_state_sessions_do_not_allocate() {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let traces = [
        Trace::constant(1400.0, 60.0).unwrap(),
        Trace::new(vec![(20.0, 2500.0), (10.0, 700.0), (20.0, 1800.0)]).unwrap(),
        Trace::new(vec![(30.0, 600.0), (5.0, 0.0), (30.0, 3000.0)]).unwrap(),
    ];
    let mut bb = BufferBased::paper_default();
    let mut rb = RateBased::paper_default();
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();

    // Warm-up: size the records vec, algorithm string, and scratch rings.
    for trace in &traces {
        run_session_with(
            &mut scratch,
            &mut out,
            &mut bb,
            LastSample::new(),
            trace,
            &video,
            &cfg,
        );
        run_session_with(
            &mut scratch,
            &mut out,
            &mut rb,
            LastSample::new(),
            trace,
            &video,
            &cfg,
        );
    }

    let (allocs, chunks) = allocations(|| {
        let mut chunks = 0usize;
        for _ in 0..20 {
            for trace in &traces {
                run_session_with(
                    &mut scratch,
                    &mut out,
                    &mut bb,
                    LastSample::new(),
                    trace,
                    &video,
                    &cfg,
                );
                chunks += out.records.len();
                run_session_with(
                    &mut scratch,
                    &mut out,
                    &mut rb,
                    LastSample::new(),
                    trace,
                    &video,
                    &cfg,
                );
                chunks += out.records.len();
            }
        }
        chunks
    });
    assert_eq!(chunks, 20 * traces.len() * 2 * video.num_chunks());
    assert_eq!(allocs, 0, "steady-state sessions must not allocate");
}
