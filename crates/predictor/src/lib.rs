//! Throughput predictors.
//!
//! The paper treats the predictor as a pluggable component (Section 3.3,
//! Eq. 12) and evaluates with the **harmonic mean of the observed throughput
//! of the last 5 chunks**, which is robust to per-chunk outliers (following
//! FESTIVE). This crate provides that predictor plus the alternatives used
//! in the sensitivity analysis:
//!
//! * [`HarmonicMean`] — the paper's default (`w = 5`);
//! * [`SlidingMean`], [`Ewma`], [`LastSample`] — common baselines;
//! * [`NoisyOracle`] — ground truth perturbed by a controlled error level,
//!   used to study "how does prediction error affect each algorithm"
//!   (Figure 11a, Figure 12b) independent of any concrete predictor;
//! * [`ErrorTracked`] — a wrapper that records the absolute percentage error
//!   of recent predictions; RobustMPC divides its prediction by
//!   `1 + max_error` to obtain the throughput lower bound (Section 4.3).
//!
//! Protocol: before each chunk decision the player calls
//! [`Predictor::predict`]; after the chunk downloads it calls
//! [`Predictor::observe`] with the measured average throughput. Oracle-style
//! predictors additionally receive [`Predictor::hint_future`] with the true
//! upcoming throughput (only the simulator knows it); real predictors ignore
//! the hint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A throughput predictor: consumes per-chunk throughput observations and
/// produces a scalar forecast for upcoming chunks (kbps).
pub trait Predictor: Send {
    /// Records the measured average throughput of the chunk that just
    /// finished downloading, in kbps.
    fn observe(&mut self, actual_kbps: f64);

    /// Forecast for the next chunks in kbps, or `None` before any
    /// observation.
    fn predict(&self) -> Option<f64>;

    /// Clears all history.
    fn reset(&mut self);

    /// Supplies the *true* average throughput over the upcoming horizon.
    /// Only oracle-style predictors use this; the default is a no-op so the
    /// driver can call it unconditionally.
    fn hint_future(&mut self, _truth_kbps: f64) {}
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn observe(&mut self, actual_kbps: f64) {
        (**self).observe(actual_kbps)
    }
    fn predict(&self) -> Option<f64> {
        (**self).predict()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn hint_future(&mut self, truth_kbps: f64) {
        (**self).hint_future(truth_kbps)
    }
}

/// Harmonic mean of the last `window` observations — the paper's default
/// predictor (`window = 5`).
///
/// ```
/// use abr_predictor::{HarmonicMean, Predictor};
///
/// let mut p = HarmonicMean::paper_default();
/// for kbps in [1000.0, 1000.0, 4000.0] {
///     p.observe(kbps);
/// }
/// // The harmonic mean damps the 4 Mbps outlier.
/// let forecast = p.predict().unwrap();
/// assert!(forecast < 1500.0, "{forecast}");
/// ```
#[derive(Debug, Clone)]
pub struct HarmonicMean {
    window: usize,
    history: VecDeque<f64>,
}

impl HarmonicMean {
    /// The window size used throughout the paper's evaluation.
    pub const PAPER_WINDOW: usize = 5;

    /// Creates a predictor over the last `window > 0` observations.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            history: VecDeque::with_capacity(window),
        }
    }

    /// The paper's configuration: harmonic mean over 5 chunks.
    pub fn paper_default() -> Self {
        Self::new(Self::PAPER_WINDOW)
    }
}

impl Predictor for HarmonicMean {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(
            actual_kbps > 0.0 && actual_kbps.is_finite(),
            "observed throughput must be positive, got {actual_kbps}"
        );
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let inv_sum: f64 = self.history.iter().map(|c| 1.0 / c).sum();
        Some(self.history.len() as f64 / inv_sum)
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Arithmetic mean of the last `window` observations.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: usize,
    history: VecDeque<f64>,
}

impl SlidingMean {
    /// Creates a predictor over the last `window > 0` observations.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            history: VecDeque::with_capacity(window),
        }
    }
}

impl Predictor for SlidingMean {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(actual_kbps > 0.0 && actual_kbps.is_finite());
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        Some(self.history.iter().sum::<f64>() / self.history.len() as f64)
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha in (0, 1]` (higher = more weight on the latest sample).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA predictor. Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(actual_kbps > 0.0 && actual_kbps.is_finite());
        self.value = Some(match self.value {
            None => actual_kbps,
            Some(v) => self.alpha * actual_kbps + (1.0 - self.alpha) * v,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.value
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// A first-order autoregressive predictor fitted online by least squares —
/// one of the "more accurate predictors" the paper's Section 8 calls for.
///
/// Models `c_{t+1} = a · c_t + b` in the log domain (throughput is
/// multiplicative) over a sliding window, refitting after every
/// observation. Falls back to the last sample until the window holds
/// enough points or whenever the fit is degenerate.
#[derive(Debug, Clone)]
pub struct Ar1 {
    window: usize,
    history: VecDeque<f64>,
}

impl Ar1 {
    /// Creates an AR(1) predictor fitted over the last `window >= 3`
    /// observations.
    pub fn new(window: usize) -> Self {
        assert!(window >= 3, "AR(1) needs at least 3 points to fit");
        Self {
            window,
            history: VecDeque::with_capacity(window),
        }
    }

    /// Least-squares fit of `(a, b)` on consecutive log-throughput pairs.
    fn fit(&self) -> Option<(f64, f64)> {
        if self.history.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = self.history.iter().map(|c| c.ln()).collect();
        let n = (xs.len() - 1) as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for pair in xs.windows(2) {
            let (x, y) = (pair[0], pair[1]);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None; // constant history: slope undefined
        }
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        Some((a, b))
    }
}

impl Predictor for Ar1 {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(actual_kbps > 0.0 && actual_kbps.is_finite());
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        let last = *self.history.back()?;
        match self.fit() {
            Some((a, b)) => {
                // Clamp the pole: an explosive fit on a short window must
                // not forecast runaway throughput.
                let a = a.clamp(-1.0, 1.0);
                Some((a * last.ln() + b).exp())
            }
            None => Some(last),
        }
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Predicts whatever the last chunk achieved — the naive baseline whose
/// biases motivated smoothed predictors.
#[derive(Debug, Clone, Default)]
pub struct LastSample {
    value: Option<f64>,
}

impl LastSample {
    /// Creates an empty last-sample predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for LastSample {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(actual_kbps > 0.0 && actual_kbps.is_finite());
        self.value = Some(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        self.value
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// A crowdsourced-prior predictor — the paper's other Section 8 direction:
/// "using crowdsourced approaches based on measurements from other
/// clients". A control plane that has watched other sessions on the same
/// network supplies a prior throughput estimate; the player blends it with
/// its own observations.
///
/// The blend is harmonic: the prior acts as `weight` pseudo-observations at
/// `prior_kbps`, combined with the window of real observations in the
/// harmonic mean. A fresh session is dominated by the prior (solving the
/// cold-start problem that makes the first chunks of RB/MPC conservative);
/// as real measurements accumulate they take over.
#[derive(Debug, Clone)]
pub struct CrossSession {
    prior_kbps: f64,
    weight: f64,
    window: usize,
    history: VecDeque<f64>,
}

impl CrossSession {
    /// Creates a predictor with a prior of `prior_kbps` worth `weight`
    /// pseudo-observations, blending with the last `window` real ones.
    pub fn new(prior_kbps: f64, weight: f64, window: usize) -> Self {
        assert!(prior_kbps > 0.0 && prior_kbps.is_finite(), "bad prior");
        assert!(weight >= 0.0 && weight.is_finite(), "bad weight");
        assert!(window > 0, "window must be positive");
        Self {
            prior_kbps,
            weight,
            window,
            history: VecDeque::with_capacity(window),
        }
    }

    /// The prior value in kbps.
    pub fn prior_kbps(&self) -> f64 {
        self.prior_kbps
    }
}

impl Predictor for CrossSession {
    fn observe(&mut self, actual_kbps: f64) {
        assert!(actual_kbps > 0.0 && actual_kbps.is_finite());
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        let n = self.history.len() as f64;
        let total_weight = n + self.weight;
        if total_weight == 0.0 {
            return None;
        }
        let inv_sum: f64 =
            self.history.iter().map(|c| 1.0 / c).sum::<f64>() + self.weight / self.prior_kbps;
        Some(total_weight / inv_sum)
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Ground truth perturbed by multiplicative noise: the driver supplies the
/// true upcoming throughput via [`Predictor::hint_future`]; `predict`
/// returns `truth * (1 + e)` with `e ~ Uniform(-error_level, +error_level)`
/// drawn once per hint.
///
/// With `error_level = 0` this is the perfect predictor used for MPC-OPT.
/// This is the paper's sensitivity-analysis device: "we use the average
/// error level to characterize the performance of a throughput predictor and
/// model the prediction output as being a combination of the true throughput
/// with added random noise" (Section 7.3).
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    error_level: f64,
    rng: StdRng,
    current: Option<f64>,
}

impl NoisyOracle {
    /// Creates an oracle with relative error bound `error_level in [0, 1)`
    /// (e.g. `0.2` = predictions within ±20 % of truth), seeded for
    /// reproducibility.
    pub fn new(error_level: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&error_level),
            "error level must be in [0, 1), got {error_level}"
        );
        Self {
            error_level,
            rng: StdRng::seed_from_u64(seed),
            current: None,
        }
    }

    /// A perfect predictor (zero error).
    pub fn perfect() -> Self {
        Self::new(0.0, 0)
    }

    /// The configured error level.
    pub fn error_level(&self) -> f64 {
        self.error_level
    }
}

impl Predictor for NoisyOracle {
    fn observe(&mut self, _actual_kbps: f64) {
        // The oracle does not learn from history.
    }

    fn predict(&self) -> Option<f64> {
        self.current
    }

    fn reset(&mut self) {
        self.current = None;
    }

    fn hint_future(&mut self, truth_kbps: f64) {
        assert!(truth_kbps > 0.0 && truth_kbps.is_finite());
        let e = if self.error_level == 0.0 {
            0.0
        } else {
            self.rng.gen_range(-self.error_level..self.error_level)
        };
        self.current = Some(truth_kbps * (1.0 + e));
    }
}

/// Wraps a predictor and tracks the absolute percentage error of its recent
/// predictions, exactly as RobustMPC needs: "we use maximum prediction error
/// over the past several chunks as bounds" (Section 4.3).
///
/// Call order per chunk: `predict()` (used for the decision), then
/// `observe(actual)` once the chunk completes — the wrapper scores the
/// prediction it had outstanding before forwarding the observation.
#[derive(Debug, Clone)]
pub struct ErrorTracked<P> {
    inner: P,
    window: usize,
    errors: VecDeque<f64>,
}

impl<P: Predictor> ErrorTracked<P> {
    /// Wraps `inner`, remembering the last `window > 0` percentage errors.
    pub fn new(inner: P, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            inner,
            window,
            errors: VecDeque::with_capacity(window),
        }
    }

    /// Maximum absolute percentage error over the tracked window (0 until
    /// the first scored prediction).
    pub fn max_error(&self) -> f64 {
        self.errors.iter().copied().fold(0.0, f64::max)
    }

    /// Mean absolute percentage error over the tracked window (0 if empty).
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            0.0
        } else {
            self.errors.iter().sum::<f64>() / self.errors.len() as f64
        }
    }

    /// The throughput lower bound RobustMPC feeds to the regular MPC
    /// optimizer: `prediction / (1 + max_error)`.
    pub fn robust_lower_bound(&self) -> Option<f64> {
        self.inner.predict().map(|p| p / (1.0 + self.max_error()))
    }

    /// Access to the wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Like [`new`](Self::new), but reuses `errors` as the backing ring so a
    /// session driver can recycle one allocation across sessions. The buffer
    /// is cleared (and grown to at least `window` capacity), making this
    /// behaviorally identical to `new`.
    pub fn with_buffer(inner: P, window: usize, mut errors: VecDeque<f64>) -> Self {
        assert!(window > 0, "window must be positive");
        errors.clear();
        if errors.capacity() < window {
            errors.reserve(window - errors.capacity());
        }
        Self {
            inner,
            window,
            errors,
        }
    }

    /// Decomposes the wrapper, handing back the inner predictor and the
    /// error ring for reuse via [`with_buffer`](Self::with_buffer).
    pub fn into_parts(self) -> (P, VecDeque<f64>) {
        (self.inner, self.errors)
    }
}

impl<P: Predictor> Predictor for ErrorTracked<P> {
    fn observe(&mut self, actual_kbps: f64) {
        if let Some(pred) = self.inner.predict() {
            let err = (pred - actual_kbps).abs() / actual_kbps;
            if self.errors.len() == self.window {
                self.errors.pop_front();
            }
            self.errors.push_back(err);
        }
        self.inner.observe(actual_kbps);
    }

    fn predict(&self) -> Option<f64> {
        self.inner.predict()
    }

    fn reset(&mut self) {
        self.errors.clear();
        self.inner.reset();
    }

    fn hint_future(&mut self, truth_kbps: f64) {
        self.inner.hint_future(truth_kbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn harmonic_mean_matches_formula() {
        let mut p = HarmonicMean::new(3);
        assert_eq!(p.predict(), None);
        p.observe(1000.0);
        assert_eq!(p.predict(), Some(1000.0));
        p.observe(2000.0);
        let hm2 = 2.0 / (1.0 / 1000.0 + 1.0 / 2000.0);
        assert!((p.predict().unwrap() - hm2).abs() < 1e-9);
        p.observe(500.0);
        p.observe(500.0); // evicts the 1000 sample
        let hm3 = 3.0 / (1.0 / 2000.0 + 1.0 / 500.0 + 1.0 / 500.0);
        assert!((p.predict().unwrap() - hm3).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_is_outlier_robust() {
        // One inflated sample moves the harmonic mean far less than the
        // arithmetic mean — the property the paper cites for choosing it.
        let mut hm = HarmonicMean::new(5);
        let mut am = SlidingMean::new(5);
        for &c in &[1000.0, 1000.0, 1000.0, 1000.0, 10_000.0] {
            hm.observe(c);
            am.observe(c);
        }
        let hm_v = hm.predict().unwrap();
        let am_v = am.predict().unwrap();
        assert!(hm_v < am_v);
        assert!(hm_v < 1500.0, "harmonic mean {hm_v} should stay near 1000");
        assert!(am_v > 2500.0, "arithmetic mean {am_v} should be dragged up");
    }

    #[test]
    fn ewma_blends() {
        let mut p = Ewma::new(0.5);
        p.observe(1000.0);
        p.observe(2000.0);
        assert!((p.predict().unwrap() - 1500.0).abs() < 1e-9);
        p.reset();
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn ar1_tracks_constant_series() {
        let mut p = Ar1::new(6);
        assert_eq!(p.predict(), None);
        for _ in 0..6 {
            p.observe(1200.0);
        }
        let pred = p.predict().unwrap();
        assert!((pred - 1200.0).abs() < 1.0, "constant series -> {pred}");
    }

    #[test]
    fn ar1_extrapolates_a_trend() {
        // Geometric growth: each sample 10% above the previous. AR(1) in
        // the log domain fits this exactly and predicts the next step up.
        let mut p = Ar1::new(8);
        let mut c = 500.0;
        for _ in 0..8 {
            p.observe(c);
            c *= 1.1;
        }
        let pred = p.predict().unwrap();
        let last = c / 1.1;
        assert!(
            pred > last,
            "rising series should predict above the last sample: {pred} vs {last}"
        );
        // Compare against harmonic mean, which lags badly on trends.
        let mut hm = HarmonicMean::new(8);
        let mut c2 = 500.0;
        for _ in 0..8 {
            hm.observe(c2);
            c2 *= 1.1;
        }
        assert!(pred > hm.predict().unwrap());
    }

    #[test]
    fn ar1_short_history_falls_back_to_last() {
        let mut p = Ar1::new(5);
        p.observe(800.0);
        assert_eq!(p.predict(), Some(800.0));
        p.observe(1000.0);
        assert_eq!(p.predict(), Some(1000.0));
    }

    #[test]
    fn ar1_reset_clears() {
        let mut p = Ar1::new(5);
        for v in [100.0, 200.0, 300.0, 400.0] {
            p.observe(v);
        }
        p.reset();
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn ar1_prediction_is_finite_on_noisy_input() {
        let mut p = Ar1::new(5);
        for v in [100.0, 9000.0, 150.0, 7000.0, 120.0, 8000.0] {
            p.observe(v);
            if let Some(pred) = p.predict() {
                assert!(pred.is_finite() && pred > 0.0, "pred {pred}");
            }
        }
    }

    #[test]
    fn last_sample_tracks_latest() {
        let mut p = LastSample::new();
        p.observe(100.0);
        p.observe(900.0);
        assert_eq!(p.predict(), Some(900.0));
    }

    #[test]
    fn cross_session_prior_dominates_cold_start() {
        let p = CrossSession::new(2000.0, 3.0, 5);
        // No observations yet: pure prior.
        assert!((p.predict().unwrap() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn cross_session_observations_take_over() {
        let mut p = CrossSession::new(2000.0, 2.0, 5);
        for _ in 0..5 {
            p.observe(500.0);
        }
        let pred = p.predict().unwrap();
        // 5 real samples at 500 vs 2 pseudo-samples at 2000: harmonic blend
        // sits much closer to 500 than to the prior.
        assert!(pred < 700.0, "{pred}");
        assert!(pred > 500.0, "{pred}");
    }

    #[test]
    fn cross_session_zero_weight_equals_harmonic_mean() {
        let mut cs = CrossSession::new(9999.0, 0.0, 5);
        let mut hm = HarmonicMean::new(5);
        assert_eq!(cs.predict(), None);
        for v in [800.0, 1200.0, 600.0] {
            cs.observe(v);
            hm.observe(v);
        }
        assert!((cs.predict().unwrap() - hm.predict().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn oracle_perfect_reproduces_truth() {
        let mut p = NoisyOracle::perfect();
        assert_eq!(p.predict(), None);
        p.hint_future(1234.0);
        assert_eq!(p.predict(), Some(1234.0));
        p.observe(999.0); // ignored
        assert_eq!(p.predict(), Some(1234.0));
    }

    #[test]
    fn oracle_noise_bounded_and_deterministic() {
        let mut a = NoisyOracle::new(0.2, 7);
        let mut b = NoisyOracle::new(0.2, 7);
        for i in 1..100 {
            let truth = 100.0 * i as f64;
            a.hint_future(truth);
            b.hint_future(truth);
            let pa = a.predict().unwrap();
            assert_eq!(pa, b.predict().unwrap());
            assert!((pa - truth).abs() <= 0.2 * truth + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "error level")]
    fn oracle_rejects_bad_error_level() {
        let _ = NoisyOracle::new(1.5, 0);
    }

    #[test]
    fn error_tracker_scores_previous_prediction() {
        let mut p = ErrorTracked::new(LastSample::new(), 5);
        assert_eq!(p.max_error(), 0.0);
        p.observe(1000.0); // no outstanding prediction yet -> no error entry
        assert_eq!(p.max_error(), 0.0);
        // Prediction is 1000; actual 800 -> error 0.25.
        p.observe(800.0);
        assert!((p.max_error() - 0.25).abs() < 1e-9);
        // Prediction is 800; actual 800 -> error 0; max stays 0.25.
        p.observe(800.0);
        assert!((p.max_error() - 0.25).abs() < 1e-9);
        assert!((p.mean_error() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn error_tracker_window_evicts() {
        let mut p = ErrorTracked::new(LastSample::new(), 2);
        p.observe(1000.0);
        p.observe(500.0); // error 1.0
        p.observe(500.0); // error 0
        p.observe(500.0); // error 0 -> the 1.0 entry evicted
        assert!(p.max_error() < 1e-9);
    }

    #[test]
    fn robust_lower_bound_formula() {
        let mut p = ErrorTracked::new(LastSample::new(), 5);
        p.observe(1000.0);
        p.observe(500.0); // err = 1.0, prediction now 500
        let lb = p.robust_lower_bound().unwrap();
        assert!((lb - 250.0).abs() < 1e-9, "500/(1+1.0) = 250, got {lb}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = ErrorTracked::new(HarmonicMean::new(3), 3);
        p.observe(100.0);
        p.observe(300.0);
        p.reset();
        assert_eq!(p.predict(), None);
        assert_eq!(p.max_error(), 0.0);
    }

    #[test]
    fn hint_passes_through_wrapper() {
        let mut p = ErrorTracked::new(NoisyOracle::perfect(), 5);
        p.hint_future(700.0);
        assert_eq!(p.predict(), Some(700.0));
    }

    proptest! {
        /// Harmonic mean lies between min and max of the window.
        #[test]
        fn harmonic_mean_bounded(values in proptest::collection::vec(1.0f64..1e6, 1..20)) {
            let mut p = HarmonicMean::new(5);
            for &v in &values {
                p.observe(v);
            }
            let tail: Vec<f64> = values.iter().rev().take(5).copied().collect();
            let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().copied().fold(0.0f64, f64::max);
            let pred = p.predict().unwrap();
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        }

        /// Harmonic mean <= arithmetic mean (AM–HM inequality).
        #[test]
        fn hm_le_am(values in proptest::collection::vec(1.0f64..1e6, 1..5)) {
            let mut hm = HarmonicMean::new(5);
            let mut am = SlidingMean::new(5);
            for &v in &values {
                hm.observe(v);
                am.observe(v);
            }
            prop_assert!(hm.predict().unwrap() <= am.predict().unwrap() + 1e-9);
        }

        /// Tracked errors are always non-negative and the lower bound never
        /// exceeds the raw prediction.
        #[test]
        fn lower_bound_never_exceeds_prediction(
            values in proptest::collection::vec(1.0f64..1e5, 2..30)
        ) {
            let mut p = ErrorTracked::new(HarmonicMean::paper_default(), 5);
            for &v in &values {
                p.observe(v);
                prop_assert!(p.max_error() >= 0.0);
                if let (Some(lb), Some(pred)) = (p.robust_lower_bound(), p.predict()) {
                    prop_assert!(lb <= pred + 1e-9);
                }
            }
        }
    }
}
