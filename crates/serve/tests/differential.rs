//! The remote-vs-in-process differential gate.
//!
//! Acceptance criterion of the decision service: a session that outsources
//! every decision over a real socket must receive the *bit-identical*
//! decision sequence (and therefore QoE) that the in-process controller
//! produces for the same (trace, video, controller, seed).

use abr_serve::{Backend, DecisionServer, LoadOptions, PredictorKind, run_load};

/// The headline gate: 256 concurrent FastMPC sessions on loopback, every
/// one verified bit-for-bit against its in-process twin.
#[test]
fn fastmpc_256_concurrent_sessions_bit_identical() {
    let handle = DecisionServer::spawn(8).unwrap();
    let mut opts = LoadOptions::new(256);
    opts.backend = Backend::FastMpc;
    let report = run_load(handle.addr(), &opts);
    assert_eq!(report.sessions, 256);
    assert_eq!(
        report.mismatches, 0,
        "remote decisions diverged:\n{}",
        report.mismatch_details.join("\n")
    );
    assert_eq!(report.decisions, 256 * 65, "every chunk decided remotely");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    // All sessions used the same video/config: the server must have
    // generated exactly one FastMPC table.
    assert_eq!(handle.service().store().tables().len(), 1);
}

/// Every backend stays bit-identical, not just the table-lookup path.
#[test]
fn all_backends_bit_identical_under_concurrency() {
    let handle = DecisionServer::spawn(4).unwrap();
    for backend in Backend::ALL {
        let mut opts = LoadOptions::new(8);
        opts.backend = backend;
        opts.seed = 1234;
        let report = run_load(handle.addr(), &opts);
        assert_eq!(
            report.mismatches,
            0,
            "{backend} diverged:\n{}",
            report.mismatch_details.join("\n")
        );
        assert_eq!(report.decisions, 8 * 65);
    }
}

/// The robust lower bound and error tracking also replicate: RobustMPC
/// with a non-default predictor exercises the error-window machinery.
#[test]
fn robustmpc_with_alternate_predictors_bit_identical() {
    let handle = DecisionServer::spawn(2).unwrap();
    for predictor in [
        PredictorKind::Harmonic,
        PredictorKind::Sliding(8),
        PredictorKind::Ewma(0.6),
        PredictorKind::Last,
        PredictorKind::Ar1(10),
        PredictorKind::CrossSession { prior_kbps: 1800.0, weight: 2.5 },
    ] {
        let mut opts = LoadOptions::new(4);
        opts.backend = Backend::RobustMpc;
        opts.predictor = predictor;
        opts.seed = 7;
        let report = run_load(handle.addr(), &opts);
        assert_eq!(
            report.mismatches,
            0,
            "{predictor:?} diverged:\n{}",
            report.mismatch_details.join("\n")
        );
    }
}

/// The bulk path's headline gate: 32 FastMPC sessions driven 8-to-a-group
/// through `POST /decisions`, every one verified bit-for-bit against its
/// in-process twin — same guarantee as the scalar path, 1/8th the
/// round-trips.
#[test]
fn bulk_decisions_bit_identical() {
    let handle = DecisionServer::spawn(4).unwrap();
    let mut opts = LoadOptions::new(32);
    opts.backend = Backend::FastMpc;
    opts.batch = 8;
    let report = run_load(handle.addr(), &opts);
    assert_eq!(report.batch, 8);
    assert_eq!(
        report.mismatches, 0,
        "bulk decisions diverged:\n{}",
        report.mismatch_details.join("\n")
    );
    assert_eq!(report.decisions, 32 * 65, "every chunk decided remotely");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert!(handle.service().store().is_empty(), "sessions closed");
}

/// Bulk requests stay bit-identical for every backend, including a group
/// size that does not divide the session count (ragged last group).
#[test]
fn bulk_all_backends_bit_identical() {
    let handle = DecisionServer::spawn(4).unwrap();
    for backend in Backend::ALL {
        let mut opts = LoadOptions::new(10);
        opts.backend = backend;
        opts.seed = 1234;
        opts.batch = 4; // groups of 4, 4, 2
        let report = run_load(handle.addr(), &opts);
        assert_eq!(
            report.mismatches,
            0,
            "{backend} diverged under bulk:\n{}",
            report.mismatch_details.join("\n")
        );
        assert_eq!(report.decisions, 10 * 65);
    }
}

/// Sequential sessions on one server interleaved with concurrent ones:
/// session state must be fully isolated per sid.
#[test]
fn sessions_are_isolated() {
    let handle = DecisionServer::spawn(2).unwrap();
    // Two waves against the same server; the second must be as clean as
    // the first (no state bleed between sids, counters only grow).
    let mut opts = LoadOptions::new(16);
    opts.backend = Backend::Mpc;
    let first = run_load(handle.addr(), &opts);
    let second = run_load(handle.addr(), &opts);
    assert_eq!(first.mismatches, 0);
    assert_eq!(second.mismatches, 0);
    assert!(handle.service().store().is_empty(), "sessions closed");
    assert_eq!(
        handle
            .service()
            .metrics()
            .sessions_registered
            .load(std::sync::atomic::Ordering::Relaxed),
        32
    );
}
