//! The kernel-level batch differential: `decide_batch` must equal
//! `map(decide)` bit-for-bit for every backend the service hosts.
//!
//! The closed-loop tests in `differential.rs` cover batches that arise
//! from real sessions stepping in lockstep; this file sweeps *synthetic*
//! controller contexts drawn from a seeded generator, so the comparison
//! also covers state combinations a single trace family would rarely
//! produce (deep buffers with low predictions, panic flags at high
//! levels, ragged chunk indices within one batch, mixed videos).
//!
//! Deliberately deterministic — a fixed linear congruential generator
//! rather than a property-testing framework — so a failure always prints
//! a reproducible seed and the sweep costs the same on every run.

use abr_core::{BitrateController, ControllerContext, Decision};
use abr_fastmpc::{FastMpcTable, TableConfig, TableHandle};
use abr_serve::Backend;
use abr_video::{envivio_video, Ladder, LevelIdx, QoeWeights, Video, VideoBuilder};
use std::sync::Arc;

const BUFFER_MAX_SECS: f64 = 30.0;
const HORIZON: usize = 5;

/// Knuth's MMIX constants; returns a uniform draw in `[0, 1)`.
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// An owned controller context (the real one borrows the video).
struct CtxSpec {
    chunk_index: usize,
    buffer_secs: f64,
    prev_level: Option<usize>,
    prediction_kbps: Option<f64>,
    robust_lower_kbps: Option<f64>,
    last_throughput_kbps: Option<f64>,
    recent_low_buffer: bool,
    startup: bool,
}

impl CtxSpec {
    /// Draws a context that satisfies the driver invariants: chunk 0 is
    /// the startup phase with nothing observed yet; later chunks carry a
    /// previous level, a prediction, a robust lower bound at or below it,
    /// and the previous chunk's measured throughput.
    fn random(state: &mut u64, chunks: usize, levels: usize) -> Self {
        let chunk_index = (lcg(state) * chunks as f64) as usize;
        if chunk_index == 0 {
            return Self {
                chunk_index: 0,
                buffer_secs: 0.0,
                prev_level: None,
                prediction_kbps: None,
                robust_lower_kbps: None,
                last_throughput_kbps: None,
                recent_low_buffer: false,
                startup: true,
            };
        }
        let prediction = 200.0 + lcg(state) * 4800.0;
        Self {
            chunk_index,
            buffer_secs: 0.5 + lcg(state) * (BUFFER_MAX_SECS - 1.0),
            prev_level: Some((lcg(state) * levels as f64) as usize),
            prediction_kbps: Some(prediction),
            robust_lower_kbps: Some(prediction / (1.0 + lcg(state))),
            last_throughput_kbps: Some(200.0 + lcg(state) * 5800.0),
            recent_low_buffer: lcg(state) < 0.25,
            startup: false,
        }
    }

    fn materialize<'a>(&self, video: &'a Video) -> ControllerContext<'a> {
        ControllerContext {
            chunk_index: self.chunk_index,
            buffer_secs: self.buffer_secs,
            prev_level: self.prev_level.map(LevelIdx),
            prediction_kbps: self.prediction_kbps,
            robust_lower_kbps: self.robust_lower_kbps,
            last_throughput_kbps: self.last_throughput_kbps,
            recent_low_buffer: self.recent_low_buffer,
            startup: self.startup,
            video,
            buffer_max_secs: BUFFER_MAX_SECS,
            live: None,
        }
    }
}

/// Same table recipe as the load generator's in-process twin.
fn make_table(video: &Video, weights: &QoeWeights) -> TableHandle {
    let mut cfg = TableConfig::with_levels(video.ladder().len(), BUFFER_MAX_SECS);
    cfg.weights = weights.clone();
    TableHandle::Owned(Arc::new(FastMpcTable::generate(video, BUFFER_MAX_SECS, cfg)))
}

/// Two freshly built controllers of the same backend see the same context
/// stream — one through `decide`, one through `decide_batch` — and must
/// emit identical bits. Fresh pairs per call keep stateful controllers
/// (FESTIVE's switch history, dash.js rules) in lockstep.
fn assert_batch_matches_scalar(
    backend: Backend,
    ctxs: &[ControllerContext<'_>],
    table: &TableHandle,
    weights: &QoeWeights,
    seed: u64,
) {
    let mut scalar = backend.build(Some(table), weights, HORIZON);
    let mut batched = backend.build(Some(table), weights, HORIZON);
    let expect: Vec<Decision> = ctxs.iter().map(|c| scalar.decide(c)).collect();
    let mut got = Vec::new();
    batched.decide_batch(ctxs, &mut got);
    assert_eq!(got.len(), expect.len(), "{backend}: seed {seed:#x} batch length");
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(
            g.level, e.level,
            "{backend}: seed {seed:#x} ctx {i} level diverged"
        );
        assert_eq!(
            g.startup_wait_secs.map(f64::to_bits),
            e.startup_wait_secs.map(f64::to_bits),
            "{backend}: seed {seed:#x} ctx {i} startup wait diverged"
        );
    }
}

/// The sweep: every backend, several seeds, batch sizes from a singleton
/// through well past the service's typical group size.
#[test]
fn decide_batch_matches_scalar_for_every_backend() {
    let video = envivio_video();
    let weights = QoeWeights::balanced();
    let table = make_table(&video, &weights);
    let chunks = video.num_chunks();
    let levels = video.ladder().len();
    for backend in Backend::ALL {
        for (round, &n) in [1usize, 7, 64, 256].iter().enumerate() {
            let mut seed = 0x5EED_0001 + round as u64 * 0x9E37_79B9;
            let start_seed = seed;
            let specs: Vec<CtxSpec> = (0..n)
                .map(|_| CtxSpec::random(&mut seed, chunks, levels))
                .collect();
            let ctxs: Vec<ControllerContext<'_>> =
                specs.iter().map(|s| s.materialize(&video)).collect();
            assert_batch_matches_scalar(backend, &ctxs, &table, &weights, start_seed);
        }
    }
}

/// A batch whose contexts reference *different* videos: the server hosts
/// many sessions, and nothing guarantees a bulk request is homogeneous.
/// The kernel must read the ladder and chunk geometry per context, never
/// from the batch's first element.
#[test]
fn decide_batch_handles_mixed_video_batches() {
    let video_a = envivio_video();
    // Same shape (5 levels, 65 chunks, 4 s) so one FastMPC table stays
    // dimensionally valid, but a shifted ladder: any kernel that caches
    // the first context's video would mis-anchor half the batch.
    let video_b = VideoBuilder::new(
        Ladder::new(vec![300.0, 700.0, 1200.0, 2100.0, 2800.0]).unwrap(),
    )
    .chunks(video_a.num_chunks())
    .chunk_secs(4.0)
    .cbr();
    let weights = QoeWeights::balanced();
    let table = make_table(&video_a, &weights);
    let chunks = video_a.num_chunks();
    let levels = video_a.ladder().len();
    for backend in Backend::ALL {
        let mut seed = 0xA17E_0002;
        let start_seed = seed;
        let specs: Vec<CtxSpec> = (0..96)
            .map(|_| CtxSpec::random(&mut seed, chunks, levels))
            .collect();
        let ctxs: Vec<ControllerContext<'_>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.materialize(if i % 2 == 0 { &video_a } else { &video_b }))
            .collect();
        assert_batch_matches_scalar(backend, &ctxs, &table, &weights, start_seed);
    }
}

/// Degenerate inputs: the empty batch clears the output, and a batch of
/// identical contexts is as valid as a diverse one.
#[test]
fn decide_batch_edge_cases() {
    let video = envivio_video();
    let weights = QoeWeights::balanced();
    let table = make_table(&video, &weights);
    for backend in Backend::ALL {
        let mut c = backend.build(Some(&table), &weights, HORIZON);
        let mut out = vec![Decision::level(LevelIdx(3))];
        c.decide_batch(&[], &mut out);
        assert!(out.is_empty(), "{backend}: empty batch must clear output");

        let mut seed = 0xD0_0003;
        let spec = CtxSpec::random(&mut seed, video.num_chunks(), video.ladder().len());
        let ctxs: Vec<ControllerContext<'_>> =
            (0..32).map(|_| spec.materialize(&video)).collect();
        assert_batch_matches_scalar(backend, &ctxs, &table, &weights, 0xD0_0003);
    }
}
