//! Edge-case suite for the shared-bottleneck fairness coordinator, driven
//! through the real service router (`AbrService::handle`), so every path
//! exercised here is exactly what the wire serves:
//!
//! * a single-member group degrades to the scalar backend **bit-exactly**
//!   (reply-for-reply against an ungrouped twin);
//! * members can join and leave mid-stream without disturbing the
//!   group-mates' decision flow;
//! * closing a member concurrently with group-mates' allocations never
//!   poisons them (threaded chaos test);
//! * the coordinator's counters surface on `GET /metrics` and add up.

use abr_net::http::Request;
use abr_serve::{AbrService, Backend, DecisionReply, DecisionRequest, LastChunk, SessionSpec};
use abr_video::envivio_video;
use bytes::Bytes;
use std::sync::Arc;

fn register(svc: &AbrService, backend: Backend, bottleneck: Option<&str>) -> u64 {
    let mut spec = SessionSpec::paper_default(backend, envivio_video());
    spec.bottleneck = bottleneck.map(str::to_string);
    let resp = svc.handle(&Request::post(
        "/session",
        Bytes::from(spec.encode()),
        "text/plain",
    ));
    assert_eq!(resp.status, 200, "registration failed");
    String::from_utf8_lossy(&resp.body)
        .trim()
        .strip_prefix("sid ")
        .expect("sid line")
        .parse()
        .expect("sid number")
}

fn decide(svc: &AbrService, req: &DecisionRequest) -> Result<DecisionReply, u16> {
    let resp = svc.handle(&Request::post(
        "/decision",
        Bytes::from(req.encode()),
        "text/plain",
    ));
    if resp.status != 200 {
        return Err(resp.status);
    }
    Ok(DecisionReply::decode(&String::from_utf8_lossy(&resp.body)).expect("reply body"))
}

fn close(svc: &AbrService, sid: u64) -> u16 {
    svc.handle(&Request::post(
        "/close",
        Bytes::from(format!("sid {sid}\n")),
        "text/plain",
    ))
    .status
}

fn metrics(svc: &AbrService) -> String {
    String::from_utf8_lossy(&svc.handle(&Request::get("/metrics")).body).into_owned()
}

fn metric(text: &str, key: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {key} missing in:\n{text}"))
}

/// A deterministic synthetic client report for chunk `k` of session
/// `sid`, claiming `prev_level` for the finished chunk. The values are
/// arbitrary but fixed, so twin sessions see identical requests.
fn report(sid: u64, k: usize, prev_level: usize) -> DecisionRequest {
    let buffer = 6.0 + (k % 5) as f64 * 1.75;
    let tput = 2400.0 + ((k * 131) % 900) as f64;
    DecisionRequest {
        sid,
        chunk: k,
        buffer_secs: buffer,
        last: (k > 0).then_some(LastChunk {
            level: prev_level,
            throughput_kbps: tput,
            download_secs: 1.5 + (k % 3) as f64 * 0.5,
        }),
        now_secs: None,
    }
}

#[test]
fn single_member_group_is_bit_exactly_scalar() {
    let svc = AbrService::new(4);
    let grouped = register(&svc, Backend::RobustMpc, Some("lonely-cell"));
    let twin = register(&svc, Backend::RobustMpc, None);
    let chunks = envivio_video().num_chunks();
    let (mut lvl_a, mut lvl_b) = (0usize, 0usize);
    for k in 0..chunks {
        let a = decide(&svc, &report(grouped, k, lvl_a)).expect("grouped decision");
        let b = decide(&svc, &report(twin, k, lvl_b)).expect("twin decision");
        assert_eq!(a.level, b.level, "chunk {k}: single-member group diverged");
        assert_eq!(
            a.startup_wait_secs.map(f64::to_bits),
            b.startup_wait_secs.map(f64::to_bits),
            "chunk {k}: startup-wait diverged"
        );
        (lvl_a, lvl_b) = (a.level, b.level);
    }
    // Every grouped decision fell back to the scalar backend; none were
    // jointly allocated.
    let text = metrics(&svc);
    assert_eq!(metric(&text, "decisions_coordinated"), 0);
    assert_eq!(metric(&text, "decisions_scalar_fallback"), chunks as u64);
}

#[test]
fn members_join_and_leave_mid_stream() {
    let svc = AbrService::new(4);
    let a = register(&svc, Backend::RobustMpc, Some("cell"));
    let b = register(&svc, Backend::RobustMpc, Some("cell"));
    let mut levels = std::collections::HashMap::from([(a, 0usize), (b, 0usize)]);
    let step = |svc: &AbrService, sid: u64, k: usize, levels: &mut std::collections::HashMap<u64, usize>| {
        let reply = decide(svc, &report(sid, k, levels[&sid])).expect("live member decides");
        assert!(reply.level < envivio_video().ladder().len());
        levels.insert(sid, reply.level);
    };
    for k in 0..10 {
        step(&svc, a, k, &mut levels);
        step(&svc, b, k, &mut levels);
    }
    // A third member joins mid-stream: its startup chunk is scalar, then
    // it participates in joint allocations.
    let c = register(&svc, Backend::RobustMpc, Some("cell"));
    levels.insert(c, 0);
    for k in 0..5 {
        step(&svc, c, k, &mut levels);
    }
    let before = metric(&metrics(&svc), "decisions_coordinated");
    assert!(before > 0, "a 2-3 member group must coordinate");
    // One founding member leaves mid-stream; the survivors keep deciding.
    assert_eq!(close(&svc, b), 200);
    for k in 10..15 {
        step(&svc, a, k, &mut levels);
    }
    for k in 5..10 {
        step(&svc, c, k, &mut levels);
    }
    // Two eligible members remain: still a coordinated group.
    let text = metrics(&svc);
    assert!(metric(&text, "decisions_coordinated") > before);
    assert_eq!(metric(&text, "coordinator_members"), 2);
    // The last leave drops the group to one member: scalar fallback, but
    // decisions keep flowing.
    assert_eq!(close(&svc, c), 200);
    let fallbacks = metric(&metrics(&svc), "decisions_scalar_fallback");
    for k in 15..20 {
        step(&svc, a, k, &mut levels);
    }
    let text = metrics(&svc);
    assert_eq!(
        metric(&text, "decisions_scalar_fallback"),
        fallbacks + 5,
        "solo survivor must degrade to scalar"
    );
    assert_eq!(metric(&text, "coordinator_groups"), 1);
    assert_eq!(metric(&text, "coordinator_joins"), 3);
    assert_eq!(metric(&text, "coordinator_leaves"), 2);
}

#[test]
fn closing_members_mid_allocation_never_poisons_group_mates() {
    let svc = Arc::new(AbrService::new(8));
    let survivors: Vec<u64> = (0..6)
        .map(|_| register(&svc, Backend::FastMpc, Some("storm")))
        .collect();
    let victims: Vec<u64> = (0..2)
        .map(|_| register(&svc, Backend::FastMpc, Some("storm")))
        .collect();
    let chunks = envivio_video().num_chunks();

    let mut handles = Vec::new();
    for &sid in &survivors {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let mut level = 0usize;
            for k in 0..chunks {
                let reply = decide(&svc, &report(sid, k, level))
                    .expect("surviving member must never be poisoned");
                level = reply.level;
            }
        }));
    }
    // Victims decide a few chunks concurrently, then get closed while the
    // survivors are mid-flight.
    for &sid in &victims {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let mut level = 0usize;
            for k in 0..8 {
                match decide(&svc, &report(sid, k, level)) {
                    Ok(reply) => level = reply.level,
                    Err(status) => {
                        // Already closed under us: the only legal refusal.
                        assert_eq!(status, 404);
                        return;
                    }
                }
            }
            assert_eq!(close(&svc, sid), 200);
        }));
    }
    for h in handles {
        h.join().expect("no member thread may panic");
    }
    let text = metrics(&svc);
    assert_eq!(metric(&text, "coordinator_members"), 6);
    assert_eq!(metric(&text, "coordinator_joins"), 8);
    assert_eq!(metric(&text, "coordinator_leaves"), 2);
    // Every grouped decision is either coordinated or a scalar fallback;
    // the victims each answered exactly 8 before closing themselves.
    assert_eq!(
        metric(&text, "decisions_coordinated") + metric(&text, "decisions_scalar_fallback"),
        6 * chunks as u64 + 2 * 8
    );
}

#[test]
fn bulk_endpoint_carries_coordination() {
    use abr_serve::{decode_bulk_reply, encode_bulk};
    let svc = AbrService::new(4);
    let sids: Vec<u64> = (0..4)
        .map(|_| register(&svc, Backend::RobustMpc, Some("batch-cell")))
        .collect();
    let mut levels: Vec<usize> = vec![0; sids.len()];
    for k in 0..6 {
        let reqs: Vec<DecisionRequest> = sids
            .iter()
            .zip(&levels)
            .map(|(&sid, &l)| report(sid, k, l))
            .collect();
        let resp = svc.handle(&Request::post(
            "/decisions",
            Bytes::from(encode_bulk(&reqs)),
            "text/plain",
        ));
        assert_eq!(resp.status, 200);
        let slots = decode_bulk_reply(&String::from_utf8_lossy(&resp.body)).unwrap();
        for (i, slot) in slots.iter().enumerate() {
            levels[i] = slot.as_ref().expect("live session slot").level;
        }
    }
    // Chunk 0 for all four was scalar (startup); chunk 1 of the first
    // requester sees only itself eligible (another fallback); everything
    // after coordinates.
    let text = metrics(&svc);
    assert!(metric(&text, "decisions_coordinated") >= 18, "{text}");
    assert_eq!(
        metric(&text, "decisions_coordinated") + metric(&text, "decisions_scalar_fallback"),
        24
    );
}
