//! Server-side fairness coordinator for shared-bottleneck fleets.
//!
//! Scalar MPC optimizes each session in isolation; when many sessions
//! share one bottleneck their individually-optimal ladder climbs fight
//! each other and the per-player QoE spread widens (the multi-player
//! dynamics the paper's Section 5.3 sweep measures). The coordinator
//! closes that gap server-side without touching the wire protocol:
//!
//! * `POST /session` may declare a `bottleneck <id>` line; sessions with
//!   the same id form a **group**.
//! * Every `POST /decision(s)` from a group member first updates the
//!   member's snapshot (buffer, chunk, measured throughput, last level)
//!   and then solves a **joint allocation** over the whole group: a
//!   greedy marginal-utility ladder climb under an estimated capacity
//!   budget, with a configurable fairness term that prioritizes members
//!   below the group's mean quality. The requester's allocated level
//!   overrides its scalar controller.
//! * Groups with fewer than [`CoordinatorConfig::min_members`] eligible
//!   members (and every startup chunk, which carries no throughput
//!   observation yet) fall back to the scalar backend **bit-exactly** —
//!   the session state replays the identical bookkeeping either way, so
//!   a single-member group is indistinguishable from an uncoordinated
//!   session. `tests/coordinator.rs` pins that equivalence.
//!
//! Capacity is estimated from the group's own reports: the mean measured
//! per-flow throughput times the estimated flow concurrency
//! (`sum(download_secs_i / chunk_secs_i)`, the fraction of wall time each
//! member spends on-wire). Under equal-share link sharing, per-flow
//! throughput is `C / k` with `k` concurrent flows, so the product
//! recovers `C` without the server ever seeing the link.
//!
//! The same logic is reusable in-process: [`CoordinatedController`] wraps
//! any [`BitrateController`] and consults a shared coordinator through
//! the exact wire shape ([`DecisionRequest::from_context`]), which is how
//! the `abr-harness fairness` experiment drives coordinated fleets inside
//! the multiplayer engine and how its wire-twin check can replay the same
//! run through a real [`crate::AbrService`].

use crate::proto::DecisionRequest;
use abr_core::{BitrateController, ControllerContext, Decision};
use abr_video::{LevelIdx, QualityFn, Video};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs of the joint allocator.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Weight of the fairness term: marginal upgrades of members below
    /// the group's mean quality get a bonus proportional to their
    /// (normalized) deficit. `0.0` is pure efficiency (steepest
    /// quality-per-kbps first); larger values approach max-min fairness.
    pub alpha: f64,
    /// Fraction of the estimated bottleneck capacity the allocator hands
    /// out. Below 1.0 leaves headroom for estimation error so the group
    /// does not collectively overshoot into rebuffering.
    pub headroom: f64,
    /// Fewest members with a throughput observation before joint
    /// allocation engages; below this the scalar backend answers.
    pub min_members: usize,
    /// Members reporting a buffer below this floor are pinned to the
    /// lowest level this round — drain-protection ahead of efficiency.
    pub low_buffer_floor_secs: f64,
    /// How many ladder levels above a member's previous level the
    /// allocator may assign in one round (switching stability). `1` is
    /// the most conservative ramp; larger values track bursty links more
    /// closely at the cost of extra switching.
    pub max_step_up: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            headroom: 0.9,
            min_members: 2,
            low_buffer_floor_secs: 4.0,
            max_step_up: 1,
        }
    }
}

/// Lock-free counters the coordinator maintains for `GET /metrics`.
#[derive(Debug, Default)]
pub struct CoordinatorStats {
    /// Sessions that ever joined a group.
    pub joins: AtomicU64,
    /// Sessions that left (close or wrapper drop).
    pub leaves: AtomicU64,
    /// Live groups (gauge).
    pub groups: AtomicU64,
    /// Live group members (gauge).
    pub members: AtomicU64,
    /// Decisions answered by the joint allocator.
    pub coordinated: AtomicU64,
    /// Grouped decisions that fell back to the scalar backend (startup
    /// chunks, under-strength groups).
    pub fallbacks: AtomicU64,
}

/// One member's last reported control state.
struct Member {
    ladder_kbps: Vec<f64>,
    quality: Vec<f64>,
    chunk_secs: f64,
    buffer_secs: f64,
    prev_level: Option<usize>,
    last_tput_kbps: Option<f64>,
    last_dl_secs: f64,
}

/// Group membership behind one mutex. Members iterate in ascending sid
/// order, which makes every allocation pass deterministic.
struct Inner {
    groups: HashMap<String, BTreeMap<u64, Member>>,
    by_sid: HashMap<u64, String>,
}

/// The shared-bottleneck fairness coordinator (see module docs).
pub struct FairnessCoordinator {
    cfg: CoordinatorConfig,
    inner: Mutex<Inner>,
    stats: Arc<CoordinatorStats>,
}

impl Default for FairnessCoordinator {
    fn default() -> Self {
        Self::new(CoordinatorConfig::default())
    }
}

impl FairnessCoordinator {
    /// A coordinator with explicit allocator knobs.
    pub fn new(cfg: CoordinatorConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner {
                groups: HashMap::new(),
                by_sid: HashMap::new(),
            }),
            stats: Arc::new(CoordinatorStats::default()),
        }
    }

    /// The counters, shareable with a metrics renderer.
    pub fn stats(&self) -> &Arc<CoordinatorStats> {
        &self.stats
    }

    /// Registers session `sid` into `group`. Quality per ladder level is
    /// evaluated once here so the allocator never re-derives it.
    pub fn join(&self, group: &str, sid: u64, video: &Video, quality: &QualityFn) {
        let ladder_kbps = video.ladder().levels().to_vec();
        let member = Member {
            quality: ladder_kbps.iter().map(|&r| quality.eval(r)).collect(),
            ladder_kbps,
            chunk_secs: video.chunk_secs(),
            buffer_secs: 0.0,
            prev_level: None,
            last_tput_kbps: None,
            last_dl_secs: 0.0,
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.by_sid.insert(sid, group.to_string()).is_some() {
            // Re-join under a new group id: drop the old membership first.
            self.stats.leaves.fetch_add(1, Ordering::Relaxed);
            self.stats.members.fetch_sub(1, Ordering::Relaxed);
            remove_from_groups(&mut inner.groups, sid, &self.stats);
        }
        let members = inner.groups.entry(group.to_string()).or_insert_with(|| {
            self.stats.groups.fetch_add(1, Ordering::Relaxed);
            BTreeMap::new()
        });
        members.insert(sid, member);
        self.stats.joins.fetch_add(1, Ordering::Relaxed);
        self.stats.members.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes `sid` from its group; true if it was a member. Group-mates
    /// are untouched — the next allocation simply no longer sees the
    /// departed member.
    pub fn leave(&self, sid: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(group) = inner.by_sid.remove(&sid) else {
            return false;
        };
        let _ = group;
        remove_from_groups(&mut inner.groups, sid, &self.stats);
        self.stats.leaves.fetch_add(1, Ordering::Relaxed);
        self.stats.members.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Updates `req.sid`'s snapshot from its report and solves the joint
    /// allocation. `Some(level)` is the coordinated decision for this
    /// request; `None` means the scalar backend must answer (not a
    /// member, startup chunk, or under-strength group).
    pub fn observe_and_allocate(&self, req: &DecisionRequest) -> Option<usize> {
        // Fast path: an ungrouped deployment never takes the mutex.
        if self.stats.members.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        let Inner { groups, by_sid } = &mut *inner;
        let group = by_sid.get(&req.sid)?;
        let members = groups.get_mut(group)?;
        let me = members.get_mut(&req.sid)?;
        me.buffer_secs = req.buffer_secs;
        if let Some(last) = &req.last {
            me.prev_level = Some(last.level.min(me.ladder_kbps.len() - 1));
            me.last_tput_kbps = Some(last.throughput_kbps);
            me.last_dl_secs = last.download_secs;
        }
        let allocated = allocate(&self.cfg, members, req.sid);
        match allocated {
            Some(_) => self.stats.coordinated.fetch_add(1, Ordering::Relaxed),
            None => self.stats.fallbacks.fetch_add(1, Ordering::Relaxed),
        };
        allocated
    }
}

fn remove_from_groups(
    groups: &mut HashMap<String, BTreeMap<u64, Member>>,
    sid: u64,
    stats: &CoordinatorStats,
) {
    groups.retain(|_, members| {
        members.remove(&sid);
        if members.is_empty() {
            stats.groups.fetch_sub(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    });
}

/// The joint allocation pass: greedy marginal-utility ladder climb under
/// the estimated capacity budget. Deterministic — members are visited in
/// ascending sid order and ties go to the earliest candidate — so the
/// same snapshots always produce the same allocation.
fn allocate(
    cfg: &CoordinatorConfig,
    members: &BTreeMap<u64, Member>,
    sid: u64,
) -> Option<usize> {
    // The requester's startup chunk carries no observation: scalar
    // startup logic (and its startup-wait directive) must answer.
    if members.get(&sid)?.last_tput_kbps.is_none() {
        return None;
    }
    let eligible: Vec<(&u64, &Member)> = members
        .iter()
        .filter(|(_, m)| m.last_tput_kbps.is_some())
        .collect();
    if eligible.len() < cfg.min_members.max(1) {
        return None;
    }

    // Capacity estimate (see module docs): the saturated-link estimator
    // (mean per-flow throughput x estimated number of concurrently
    // on-wire flows) and the idle-link estimator (the best single-flow
    // observation — a download that ran mostly alone saw the whole
    // bottleneck). Each is biased low in the other's regime, so the
    // allocator budgets against the larger of the two.
    let n = eligible.len() as f64;
    let mean_tput: f64 = eligible
        .iter()
        .map(|(_, m)| m.last_tput_kbps.unwrap_or(0.0))
        .sum::<f64>()
        / n;
    let concurrency: f64 = eligible
        .iter()
        .map(|(_, m)| (m.last_dl_secs / m.chunk_secs).min(1.0))
        .sum::<f64>()
        .max(1.0);
    let max_tput: f64 = eligible
        .iter()
        .map(|(_, m)| m.last_tput_kbps.unwrap_or(0.0))
        .fold(0.0, f64::max);
    let budget = cfg.headroom * (mean_tput * concurrency).max(max_tput);

    // Everyone starts at the floor; upgrades are bounded by one step above
    // the member's last level (switching stability) and by the low-buffer
    // pin.
    let mut levels = vec![0usize; eligible.len()];
    let caps: Vec<usize> = eligible
        .iter()
        .map(|(_, m)| {
            let top = m.ladder_kbps.len() - 1;
            if m.buffer_secs < cfg.low_buffer_floor_secs {
                0
            } else {
                m.prev_level.map_or(top, |p| (p + cfg.max_step_up).min(top))
            }
        })
        .collect();
    let mut spent: f64 = eligible.iter().map(|(_, m)| m.ladder_kbps[0]).sum();

    loop {
        let qbar: f64 = eligible
            .iter()
            .zip(&levels)
            .map(|((_, m), &l)| m.quality[l])
            .sum::<f64>()
            / n;
        let scale = qbar.abs().max(1e-9);
        let mut best: Option<(f64, usize, f64)> = None;
        for (i, (_, m)) in eligible.iter().enumerate() {
            let l = levels[i];
            if l >= caps[i] {
                continue;
            }
            let dr = m.ladder_kbps[l + 1] - m.ladder_kbps[l];
            if spent + dr > budget {
                continue;
            }
            let dq = m.quality[l + 1] - m.quality[l];
            let deficit = ((qbar - m.quality[l]) / scale).max(0.0);
            let gain = dq / dr.max(1e-9) + cfg.alpha * deficit;
            // Strictly-greater keeps ties on the earliest (lowest-sid)
            // candidate: deterministic.
            if best.map_or(true, |(g, _, _)| gain > g) {
                best = Some((gain, i, dr));
            }
        }
        match best {
            Some((_, i, dr)) => {
                levels[i] += 1;
                spent += dr;
            }
            None => break,
        }
    }

    let my_idx = eligible.iter().position(|(&s, _)| s == sid)?;
    Some(levels[my_idx])
}

/// A [`BitrateController`] that consults a shared [`FairnessCoordinator`]
/// through the exact wire shape and falls back to its inner controller
/// when the coordinator declines — the in-process twin of a grouped
/// remote session. Joins its group at construction and leaves on drop.
pub struct CoordinatedController {
    inner: Box<dyn BitrateController>,
    coordinator: Arc<FairnessCoordinator>,
    sid: u64,
}

impl CoordinatedController {
    /// Wraps `inner`, joining `coordinator`'s `group` as member `sid`.
    pub fn new(
        inner: Box<dyn BitrateController>,
        coordinator: Arc<FairnessCoordinator>,
        group: &str,
        sid: u64,
        video: &Video,
        quality: &QualityFn,
    ) -> Self {
        coordinator.join(group, sid, video, quality);
        Self {
            inner,
            coordinator,
            sid,
        }
    }
}

impl BitrateController for CoordinatedController {
    fn name(&self) -> &'static str {
        "Coordinated"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let req = DecisionRequest::from_context(self.sid, ctx);
        match self.coordinator.observe_and_allocate(&req) {
            Some(level) => Decision {
                level: LevelIdx(level.min(ctx.video.ladder().len() - 1)),
                startup_wait_secs: None,
            },
            None => self.inner.decide(ctx),
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl Drop for CoordinatedController {
    fn drop(&mut self) {
        self.coordinator.leave(self.sid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::LastChunk;
    use abr_video::envivio_video;

    fn coord() -> FairnessCoordinator {
        FairnessCoordinator::default()
    }

    fn join(c: &FairnessCoordinator, sid: u64) {
        c.join("cell-1", sid, &envivio_video(), &QualityFn::Identity);
    }

    fn report(sid: u64, chunk: usize, buffer: f64, level: usize, tput: f64, dl: f64) -> DecisionRequest {
        DecisionRequest {
            sid,
            chunk,
            buffer_secs: buffer,
            last: Some(LastChunk {
                level,
                throughput_kbps: tput,
                download_secs: dl,
            }),
            now_secs: None,
        }
    }

    #[test]
    fn startup_and_single_member_fall_back_to_scalar() {
        let c = coord();
        join(&c, 1);
        // Chunk 0: no observation yet -> scalar.
        let first = DecisionRequest { sid: 1, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None };
        assert_eq!(c.observe_and_allocate(&first), None);
        // Later chunks of a single-member group: still scalar.
        assert_eq!(c.observe_and_allocate(&report(1, 1, 8.0, 0, 2000.0, 0.7)), None);
        assert_eq!(c.stats().coordinated.load(Ordering::Relaxed), 0);
        assert_eq!(c.stats().fallbacks.load(Ordering::Relaxed), 2);
        // Non-members never touch the coordinator's counters.
        assert_eq!(c.observe_and_allocate(&report(99, 1, 8.0, 0, 2000.0, 0.7)), None);
        assert_eq!(c.stats().fallbacks.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn two_members_get_joint_levels_within_capacity() {
        let c = coord();
        join(&c, 1);
        join(&c, 2);
        // Member 2's report arrives first (still single-observation: the
        // requester is eligible but member 1 is not yet).
        assert_eq!(c.observe_and_allocate(&report(2, 3, 12.0, 1, 3000.0, 4.0)), None);
        // Both on-wire all chunk at ~3 Mbps per flow: estimator recovers
        // ~6 Mbps, budget 5.4 Mbps. Greedy from {350, 350}: both reach
        // their prev+1 caps (2 for each) well inside the budget.
        let lvl = c.observe_and_allocate(&report(1, 3, 12.0, 1, 3000.0, 4.0));
        assert_eq!(lvl, Some(2));
        assert_eq!(c.stats().coordinated.load(Ordering::Relaxed), 1);
        // The allocated pair must fit the budget: 1000 + 1000 <= 5400.
    }

    #[test]
    fn join_leave_bookkeeping_tracks_gauges() {
        let c = coord();
        join(&c, 1);
        join(&c, 2);
        c.join("cell-2", 3, &envivio_video(), &QualityFn::Identity);
        assert_eq!(c.stats().groups.load(Ordering::Relaxed), 2);
        assert_eq!(c.stats().members.load(Ordering::Relaxed), 3);
        assert!(c.leave(2));
        assert!(!c.leave(2));
        assert!(c.leave(3));
        assert_eq!(c.stats().groups.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().members.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().leaves.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn allocation_is_deterministic_and_fairness_lifts_the_laggard() {
        let c = coord();
        for sid in 1..=4 {
            join(&c, sid);
        }
        // Warm everyone up: all on-wire most of the chunk, ~equal shares
        // of a ~8 Mbps link, but member 4 is stuck low.
        for sid in 1..=3u64 {
            let _ = c.observe_and_allocate(&report(sid, 5, 15.0, 3, 2000.0, 3.0));
        }
        let _ = c.observe_and_allocate(&report(4, 5, 15.0, 0, 2000.0, 3.0));
        let a = c.observe_and_allocate(&report(4, 6, 15.0, 0, 2000.0, 3.0));
        let b = c.observe_and_allocate(&report(4, 6, 15.0, 0, 2000.0, 3.0));
        // Identical snapshots -> identical allocation.
        assert_eq!(a, b);
        let lag = a.expect("4 eligible members must coordinate");
        // The laggard is never pushed below its own step-up bound, and the
        // fairness term grants it its +1 step.
        assert_eq!(lag, 1, "deficit member gets its step up");
    }

    #[test]
    fn low_buffer_members_are_pinned_to_the_floor() {
        let c = coord();
        join(&c, 1);
        join(&c, 2);
        let _ = c.observe_and_allocate(&report(2, 4, 20.0, 2, 4000.0, 2.0));
        // Member 1 reports a nearly-drained buffer: pinned to level 0 no
        // matter how much capacity the estimator sees.
        let lvl = c.observe_and_allocate(&report(1, 4, 1.0, 2, 4000.0, 2.0));
        assert_eq!(lvl, Some(0));
    }

    #[test]
    fn coordinated_controller_joins_consults_and_leaves() {
        use abr_baselines::BufferBased;
        let video = envivio_video();
        let coordinator = Arc::new(FairnessCoordinator::default());
        let mut a = CoordinatedController::new(
            Box::new(BufferBased::paper_default()),
            Arc::clone(&coordinator),
            "link",
            1,
            &video,
            &QualityFn::Identity,
        );
        let _b = CoordinatedController::new(
            Box::new(BufferBased::paper_default()),
            Arc::clone(&coordinator),
            "link",
            2,
            &video,
            &QualityFn::Identity,
        );
        assert_eq!(coordinator.stats().members.load(Ordering::Relaxed), 2);
        // Startup chunk: inner controller answers (fallback counter).
        let ctx = ControllerContext {
            chunk_index: 0,
            buffer_secs: 0.0,
            prev_level: None,
            prediction_kbps: None,
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: true,
            video: &video,
            buffer_max_secs: 30.0,
            live: None,
        };
        let d = a.decide(&ctx);
        assert!(d.level.get() < video.ladder().len());
        assert_eq!(coordinator.stats().fallbacks.load(Ordering::Relaxed), 1);
        drop(a);
        assert_eq!(coordinator.stats().members.load(Ordering::Relaxed), 1);
        assert_eq!(coordinator.stats().leaves.load(Ordering::Relaxed), 1);
    }
}
