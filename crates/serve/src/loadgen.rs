//! The closed-loop load generator.
//!
//! [`run_load`] spawns one OS thread per session. Every thread connects to
//! the decision server, registers, and drives a full trace-driven
//! `abr_sim::run_session` whose controller is a [`RemoteController`] — so
//! every per-chunk decision is a real socket round-trip carrying the
//! player's state, and each reply feeds straight back into the simulation
//! loop (closed loop, not replayed requests).
//!
//! With `batch > 1` the generator becomes an *aggregating proxy*: each
//! thread drives a group of that many virtual sessions in lockstep via
//! [`abr_sim::SessionStepper`] and coalesces the group's per-chunk state
//! into one bulk `POST /decisions` request, so the per-decision wire cost
//! is the round-trip divided by the group's decision count.
//!
//! The correctness anchor: with `verify` on (the default), each session —
//! scalar or batched — is also run with the real in-process controller and
//! the two outcomes compared: every chunk record and the final QoE must
//! match *bit for bit*. Any divergence counts as a mismatch; the harness
//! and CI gate assert zero.

use crate::backend::{Backend, PredictorKind};
use crate::client::{RemoteController, ServeClient};
use crate::metrics::exact_quantile_us;
use crate::proto::{DecisionRequest, SessionSpec};
use abr_core::Decision;
use abr_fastmpc::TableHandle;
use abr_sim::{
    run_session, SessionResult, SessionScratch, SessionStepper, SimConfig, TraceDownloader,
};
use abr_trace::{Dataset, Trace};
use abr_video::{envivio_video, LevelIdx, Video};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent sessions to run (one thread + one socket each).
    pub sessions: usize,
    /// Decision backend every session registers.
    pub backend: Backend,
    /// Predictor every session registers (and the twin runs).
    pub predictor: PredictorKind,
    /// Trace-generation seed.
    pub seed: u64,
    /// Run the in-process twin and compare bit-for-bit.
    pub verify: bool,
    /// Virtual sessions coalesced per bulk `POST /decisions` request.
    /// 1 (the default) keeps the one-thread-per-session scalar mode;
    /// `K > 1` groups K sessions per thread, stepped in lockstep with one
    /// bulk request per chunk tick. Decisions are bit-identical either
    /// way — only the wire cost changes.
    pub batch: usize,
}

impl LoadOptions {
    /// Defaults: FastMPC, harmonic prediction, verification on, scalar
    /// requests.
    pub fn new(sessions: usize) -> Self {
        Self {
            sessions,
            backend: Backend::FastMpc,
            predictor: PredictorKind::Harmonic,
            seed: 42,
            verify: true,
            batch: 1,
        }
    }
}

/// What one load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Backend exercised.
    pub backend: Backend,
    /// Sessions completed.
    pub sessions: usize,
    /// Sessions coalesced per bulk request (1 = scalar `/decision` mode).
    pub batch: usize,
    /// Total remote decisions served.
    pub decisions: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Aggregate decision throughput.
    pub decisions_per_sec: f64,
    /// Client-observed round-trip latency, exact quantiles (microseconds).
    pub mean_us: f64,
    /// Median round-trip.
    pub p50_us: f64,
    /// 90th percentile round-trip.
    pub p90_us: f64,
    /// 99th percentile round-trip.
    pub p99_us: f64,
    /// 99.9th percentile round-trip.
    pub p999_us: f64,
    /// Sessions whose remote decision sequence diverged from the
    /// in-process twin (must be zero; listed in `mismatch_details`).
    pub mismatches: usize,
    /// One line per diverging session.
    pub mismatch_details: Vec<String>,
}

/// Runs `opts.sessions` concurrent closed-loop sessions against the
/// server at `addr`.
///
/// # Panics
///
/// Panics if any session thread fails (connection refused, protocol
/// error) — load generation is a test harness, and silent partial runs
/// would corrupt the differential guarantee.
pub fn run_load(addr: SocketAddr, opts: &LoadOptions) -> LoadReport {
    let video = envivio_video();
    let sim_cfg = SessionSpec::paper_default(opts.backend, video.clone()).sim_config();
    let traces: Vec<Trace> = Dataset::Fcc.generate(opts.seed, opts.sessions);
    // The twin's FastMPC table, generated once and shared by every thread
    // (mirrors the server's process-wide cache).
    let table = opts.backend.needs_table().then(|| {
        let mut cfg = abr_fastmpc::TableConfig::with_levels(
            video.ladder().len(),
            sim_cfg.buffer_max_secs,
        );
        cfg.weights = sim_cfg.weights.clone();
        TableHandle::Owned(Arc::new(abr_fastmpc::FastMpcTable::generate(
            &video,
            sim_cfg.buffer_max_secs,
            cfg,
        )))
    });

    let batch = opts.batch.max(1);
    let started = Instant::now();
    let outcomes: Vec<SessionOutcome> = if batch > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = traces
                .chunks(batch)
                .enumerate()
                .map(|(g, group)| {
                    let video = &video;
                    let sim_cfg = &sim_cfg;
                    let table = table.as_ref();
                    scope.spawn(move || {
                        drive_group(addr, opts, video, sim_cfg, table, g * batch, group)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = traces
                .iter()
                .enumerate()
                .map(|(i, trace)| {
                    let video = &video;
                    let sim_cfg = &sim_cfg;
                    let table = table.as_ref();
                    scope.spawn(move || {
                        let mut spec =
                            SessionSpec::paper_default(opts.backend, video.clone());
                        spec.predictor = opts.predictor;
                        let mut remote = RemoteController::register(addr, &spec)
                            .unwrap_or_else(|e| panic!("session {i}: register failed: {e}"));
                        let remote_result = run_session(
                            &mut remote,
                            opts.predictor.build(),
                            trace,
                            video,
                            sim_cfg,
                        );
                        let latencies_nanos = remote
                            .finish()
                            .unwrap_or_else(|e| panic!("session {i}: close failed: {e}"));
                        let decisions = remote_result.records.len() as u64;

                        let mismatch = opts.verify.then(|| {
                            let mut local =
                                opts.backend.build(table, &sim_cfg.weights, spec.horizon);
                            let local_result = run_session(
                                local.as_mut(),
                                opts.predictor.build(),
                                trace,
                                video,
                                sim_cfg,
                            );
                            diff_sessions(i, &remote_result, &local_result)
                        });
                        SessionOutcome {
                            latencies_nanos,
                            decisions,
                            mismatch: mismatch.flatten(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let elapsed_secs = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_nanos.iter().copied())
        .collect();
    latencies.sort_unstable();
    let decisions: u64 = outcomes.iter().map(|o| o.decisions).sum();
    let mismatch_details: Vec<String> =
        outcomes.into_iter().filter_map(|o| o.mismatch).collect();
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1_000.0
    };

    LoadReport {
        backend: opts.backend,
        sessions: opts.sessions,
        batch,
        decisions,
        elapsed_secs,
        decisions_per_sec: decisions as f64 / elapsed_secs.max(1e-9),
        mean_us,
        p50_us: exact_quantile_us(&latencies, 0.50),
        p90_us: exact_quantile_us(&latencies, 0.90),
        p99_us: exact_quantile_us(&latencies, 0.99),
        p999_us: exact_quantile_us(&latencies, 0.999),
        mismatches: mismatch_details.len(),
        mismatch_details,
    }
}

/// What one virtual session contributed to the aggregate report.
struct SessionOutcome {
    latencies_nanos: Vec<u64>,
    decisions: u64,
    mismatch: Option<String>,
}

/// Drives one group of virtual sessions in lockstep over a single
/// connection: every chunk tick coalesces the group's live sessions into
/// one bulk `POST /decisions` round-trip, and each recorded per-decision
/// latency is that round-trip divided by the tick's decision count.
///
/// Sessions in a group start together but finish independently (traces
/// differ), so late ticks naturally carry fewer requests — exactly the
/// ragged tail the bulk endpoint's positional slots are for.
fn drive_group(
    addr: SocketAddr,
    opts: &LoadOptions,
    video: &Video,
    sim_cfg: &SimConfig,
    table: Option<&TableHandle>,
    base: usize,
    traces: &[Trace],
) -> Vec<SessionOutcome> {
    let mut client = ServeClient::connect(addr)
        .unwrap_or_else(|e| panic!("group at session {base}: connect failed: {e}"));
    let mut horizon = 0;
    let sids: Vec<u64> = (0..traces.len())
        .map(|j| {
            let mut spec = SessionSpec::paper_default(opts.backend, video.clone());
            spec.predictor = opts.predictor;
            horizon = spec.horizon;
            client
                .register(&spec)
                .unwrap_or_else(|e| panic!("session {}: register failed: {e}", base + j))
        })
        .collect();

    let mut scratches: Vec<SessionScratch> =
        traces.iter().map(|_| SessionScratch::new()).collect();
    let mut outs: Vec<SessionResult> =
        traces.iter().map(|_| SessionResult::default()).collect();
    let mut latencies_nanos = Vec::new();
    {
        let mut steppers: Vec<_> = scratches
            .iter_mut()
            .zip(outs.iter_mut())
            .zip(traces)
            .map(|((scratch, out), trace)| {
                SessionStepper::start(
                    scratch,
                    out,
                    opts.predictor.build(),
                    TraceDownloader::new(trace),
                    trace,
                    video,
                    sim_cfg,
                )
            })
            .collect();
        loop {
            let mut tick: Vec<_> = steppers
                .iter_mut()
                .enumerate()
                .filter(|(_, s)| !s.is_done())
                .collect();
            if tick.is_empty() {
                break;
            }
            let reqs: Vec<DecisionRequest> = tick
                .iter_mut()
                .map(|(j, s)| DecisionRequest::from_context(sids[*j], &s.context()))
                .collect();
            let start = Instant::now();
            let slots = client
                .decisions(&reqs)
                .unwrap_or_else(|e| panic!("bulk decision at session {base}: {e}"));
            let per_decision_nanos = start.elapsed().as_nanos() as u64 / reqs.len() as u64;
            for ((j, s), slot) in tick.iter_mut().zip(slots) {
                let reply = slot.unwrap_or_else(|(status, msg)| {
                    panic!("session {}: bulk slot refused: {status} {msg}", base + *j)
                });
                assert!(
                    reply.level < video.ladder().len(),
                    "bulk decision level {} off the ladder",
                    reply.level
                );
                s.apply(Decision {
                    level: LevelIdx(reply.level),
                    startup_wait_secs: reply.startup_wait_secs,
                });
                latencies_nanos.push(per_decision_nanos);
            }
        }
        for s in steppers {
            // The scalar path's RemoteController names sessions "remote";
            // keep the batched results byte-identical to it.
            s.finish("remote");
        }
    }
    for (j, &sid) in sids.iter().enumerate() {
        client
            .close_session(sid)
            .unwrap_or_else(|e| panic!("session {}: close failed: {e}", base + j));
    }

    outs.into_iter()
        .enumerate()
        .map(|(j, remote_result)| {
            let mismatch = opts
                .verify
                .then(|| {
                    let mut local = opts.backend.build(table, &sim_cfg.weights, horizon);
                    let local_result = run_session(
                        local.as_mut(),
                        opts.predictor.build(),
                        &traces[j],
                        video,
                        sim_cfg,
                    );
                    diff_sessions(base + j, &remote_result, &local_result)
                })
                .flatten();
            SessionOutcome {
                // Latencies are per-request and shared by the whole group;
                // attach them once so aggregation does not double-count.
                latencies_nanos: if j == 0 {
                    std::mem::take(&mut latencies_nanos)
                } else {
                    Vec::new()
                },
                decisions: remote_result.records.len() as u64,
                mismatch,
            }
        })
        .collect()
}

/// Compares a remote session against its in-process twin; `None` when
/// bit-identical, otherwise one line describing the first divergence.
/// Shared with [`crate::muxload`] — both generators enforce the same
/// contract.
pub(crate) fn diff_sessions(
    session: usize,
    remote: &abr_sim::SessionResult,
    local: &abr_sim::SessionResult,
) -> Option<String> {
    if remote.records.len() != local.records.len() {
        return Some(format!(
            "session {session}: {} remote chunks vs {} local",
            remote.records.len(),
            local.records.len()
        ));
    }
    for (r, l) in remote.records.iter().zip(&local.records) {
        if r.level != l.level {
            return Some(format!(
                "session {session}: chunk {} level {:?} remote vs {:?} local",
                r.index, r.level, l.level
            ));
        }
        if r.buffer_after_secs.to_bits() != l.buffer_after_secs.to_bits()
            || r.download_secs.to_bits() != l.download_secs.to_bits()
        {
            return Some(format!(
                "session {session}: chunk {} state drifted (buffer {} vs {})",
                r.index, r.buffer_after_secs, l.buffer_after_secs
            ));
        }
    }
    if remote.qoe.qoe.to_bits() != local.qoe.qoe.to_bits() {
        return Some(format!(
            "session {session}: QoE {} remote vs {} local",
            remote.qoe.qoe, local.qoe.qoe
        ));
    }
    if remote.total_secs.to_bits() != local.total_secs.to_bits() {
        return Some(format!(
            "session {session}: wall clock {} remote vs {} local",
            remote.total_secs, local.total_secs
        ));
    }
    None
}
