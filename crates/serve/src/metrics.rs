//! Service counters and latency accounting for `GET /metrics`.
//!
//! Per-backend decision latency is kept in fixed log2 buckets (lock-free
//! atomics on the hot path); `GET /metrics` renders bucket-resolution
//! quantiles. The load generator computes its *exact* client-observed
//! quantiles separately from raw samples — the server-side histogram is
//! operational visibility, not the benchmark's source of truth.

use crate::coordinator::CoordinatorStats;
use abr_fastmpc::TableStoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const BUCKETS: usize = 40;

/// Lock-free log2-bucketed latency histogram (microsecond domain).
#[derive(Debug)]
pub struct LatencyHistogram {
    count: AtomicU64,
    total_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        let idx = (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_nanos.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Bucket-resolution quantile in microseconds: the upper edge of the
    /// bucket holding the `q`-quantile sample (0 when empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u64 << idx) as f64 / 1_000.0;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1_000.0
    }
}

/// Exact quantile over raw nanosecond samples (the load generator's path).
/// `samples` must be sorted ascending; `q` in [0, 1].
pub fn exact_quantile_us(samples: &[u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank - 1] as f64 / 1_000.0
}

/// One backend's counters.
#[derive(Debug, Default)]
pub struct BackendStats {
    /// Decisions served.
    pub decisions: AtomicU64,
    /// Decision-handling latency (service time, not network time).
    pub latency: LatencyHistogram,
}

/// One event loop's observability counters (all lock-free atomics; the
/// loop thread is the only writer, `GET /metrics` the reader).
#[derive(Debug, Default)]
pub struct LoopStats {
    /// Times the loop's `epoll_wait` returned (including timeouts).
    pub wakeups: AtomicU64,
    /// Connections this loop accepted (only the listener-owning loop
    /// accepts; the others show 0).
    pub accepts: AtomicU64,
    /// Reads that left an incomplete request buffered — the byte stream
    /// paused mid-message and the state machine carried it across.
    pub partial_reads: AtomicU64,
    /// Writes that could not drain the full response buffer (kernel
    /// send-queue pushback; the remainder waits for writability).
    pub short_writes: AtomicU64,
    /// Connections currently owned by this loop.
    pub open_conns: AtomicU64,
}

/// Process-wide service counters.
#[derive(Debug)]
pub struct Metrics {
    /// Sessions ever registered.
    pub sessions_registered: AtomicU64,
    /// Sessions explicitly closed.
    pub sessions_closed: AtomicU64,
    /// Requests refused with a 4xx.
    pub rejected: AtomicU64,
    /// Live playback latency reported at each live decision (the gap
    /// between the live edge and the playhead, not a service time).
    /// Recorded in nanoseconds of latency-seconds scaled by 1e9, so the
    /// log2 histogram keeps sub-second resolution; rendered in seconds,
    /// and only when at least one live decision was served — a pure-VOD
    /// deployment's `/metrics` body is byte-identical to the pre-live one.
    pub live_latency: LatencyHistogram,
    backends: [(&'static str, BackendStats); 8],
    loops: OnceLock<Vec<Arc<LoopStats>>>,
    coordinator: OnceLock<Arc<CoordinatorStats>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters covering every backend.
    pub fn new() -> Self {
        Self {
            sessions_registered: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            live_latency: LatencyHistogram::new(),
            backends: crate::backend::Backend::ALL
                .map(|b| (b.token(), BackendStats::default())),
            loops: OnceLock::new(),
            coordinator: OnceLock::new(),
        }
    }

    /// Attaches the event loops' counters so `render` can expose them.
    /// Called once by the event-driven server at spawn; a second call
    /// (another server sharing the service) is ignored.
    pub fn attach_loops(&self, loops: Vec<Arc<LoopStats>>) {
        let _ = self.loops.set(loops);
    }

    /// Attaches the fairness coordinator's counters so `render` can
    /// expose them. Called once at service construction.
    pub fn attach_coordinator(&self, stats: Arc<CoordinatorStats>) {
        let _ = self.coordinator.set(stats);
    }

    /// Records one live decision's playback latency, seconds. Negative
    /// samples (a playhead ahead of the edge cannot happen, but a defensive
    /// clamp is cheap) count as zero.
    pub fn record_live_latency(&self, latency_secs: f64) {
        self.live_latency.record((latency_secs.max(0.0) * 1e9) as u64);
    }

    /// The stats bucket for a backend token.
    pub fn backend(&self, token: &str) -> &BackendStats {
        self.backends
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, s)| s)
            .expect("every Backend token has a stats slot")
    }

    /// Renders the `GET /metrics` plain-text body. `tables` is the
    /// session store's [`TableStoreStats`] snapshot: `fastmpc_tables_cached`
    /// keeps its historical meaning (hot-tier residents), and the tier
    /// counters get their own `table_*` lines.
    pub fn render(&self, live_sessions: usize, tables: &TableStoreStats) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "sessions_registered {}\n",
            self.sessions_registered.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "sessions_closed {}\n",
            self.sessions_closed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("sessions_live {live_sessions}\n"));
        out.push_str(&format!("fastmpc_tables_cached {}\n", tables.hot_entries));
        out.push_str(&format!("table_hot_hits {}\n", tables.hot_hits));
        out.push_str(&format!("table_warm_hits {}\n", tables.warm_hits));
        out.push_str(&format!("table_generates {}\n", tables.generates));
        out.push_str(&format!("table_evictions {}\n", tables.evictions));
        out.push_str(&format!("table_hot_bytes {}\n", tables.hot_bytes));
        out.push_str(&format!(
            "requests_rejected {}\n",
            self.rejected.load(Ordering::Relaxed)
        ));
        let total: u64 = self
            .backends
            .iter()
            .map(|(_, s)| s.decisions.load(Ordering::Relaxed))
            .sum();
        out.push_str(&format!("decisions_total {total}\n"));
        for (token, stats) in &self.backends {
            let n = stats.decisions.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            out.push_str(&format!(
                "decisions{{backend={token}}} {n}\n\
                 decision_mean_us{{backend={token}}} {:.1}\n\
                 decision_p50_us{{backend={token}}} {:.1}\n\
                 decision_p99_us{{backend={token}}} {:.1}\n",
                stats.latency.mean_us(),
                stats.latency.quantile_us(0.50),
                stats.latency.quantile_us(0.99),
            ));
        }
        let live_n = self.live_latency.count();
        if live_n > 0 {
            // Histogram "microseconds" are latency-seconds * 1e6 (the
            // recorder scales seconds by 1e9 into the nanosecond domain).
            out.push_str(&format!(
                "live_latency_count {live_n}\n\
                 live_latency_mean_secs {:.3}\n\
                 live_latency_p50_secs {:.3}\n\
                 live_latency_p99_secs {:.3}\n",
                self.live_latency.mean_us() / 1e6,
                self.live_latency.quantile_us(0.50) / 1e6,
                self.live_latency.quantile_us(0.99) / 1e6,
            ));
        }
        if let Some(c) = self.coordinator.get() {
            out.push_str(&format!(
                "coordinator_groups {}\n\
                 coordinator_members {}\n\
                 coordinator_joins {}\n\
                 coordinator_leaves {}\n\
                 decisions_coordinated {}\n\
                 decisions_scalar_fallback {}\n",
                c.groups.load(Ordering::Relaxed),
                c.members.load(Ordering::Relaxed),
                c.joins.load(Ordering::Relaxed),
                c.leaves.load(Ordering::Relaxed),
                c.coordinated.load(Ordering::Relaxed),
                c.fallbacks.load(Ordering::Relaxed),
            ));
        }
        if let Some(loops) = self.loops.get() {
            let open_total: u64 = loops
                .iter()
                .map(|l| l.open_conns.load(Ordering::Relaxed))
                .sum();
            out.push_str(&format!("conns_open {open_total}\n"));
            for (i, l) in loops.iter().enumerate() {
                out.push_str(&format!(
                    "loop_wakeups{{loop={i}}} {}\n\
                     loop_accepts{{loop={i}}} {}\n\
                     loop_partial_reads{{loop={i}}} {}\n\
                     loop_short_writes{{loop={i}}} {}\n\
                     loop_open_conns{{loop={i}}} {}\n",
                    l.wakeups.load(Ordering::Relaxed),
                    l.accepts.load(Ordering::Relaxed),
                    l.partial_reads.load(Ordering::Relaxed),
                    l.short_writes.load(Ordering::Relaxed),
                    l.open_conns.load(Ordering::Relaxed),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_bucket_edges() {
        let h = LatencyHistogram::new();
        // 90 samples at ~1us, 10 at ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        assert!(p50 >= 1.0 && p50 <= 3.0, "p50 {p50}");
        assert!(p99 >= 1_000.0 && p99 <= 3_000.0, "p99 {p99}");
        assert!(h.mean_us() > 90.0 && h.mean_us() < 120.0, "{}", h.mean_us());
    }

    #[test]
    fn exact_quantiles_are_exact() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 1_000).collect();
        assert_eq!(exact_quantile_us(&samples, 0.5), 500.0);
        assert_eq!(exact_quantile_us(&samples, 0.99), 990.0);
        assert_eq!(exact_quantile_us(&samples, 0.999), 999.0);
        assert_eq!(exact_quantile_us(&samples, 1.0), 1000.0);
        assert_eq!(exact_quantile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn loop_stats_render_per_loop_lines() {
        let m = Metrics::new();
        // No loops attached: the event-loop section is absent entirely.
        assert!(!m.render(0, &TableStoreStats::default()).contains("conns_open"));
        let loops: Vec<Arc<LoopStats>> =
            (0..2).map(|_| Arc::new(LoopStats::default())).collect();
        loops[0].wakeups.fetch_add(5, Ordering::Relaxed);
        loops[0].accepts.fetch_add(3, Ordering::Relaxed);
        loops[1].partial_reads.fetch_add(2, Ordering::Relaxed);
        loops[1].short_writes.fetch_add(1, Ordering::Relaxed);
        loops[0].open_conns.fetch_add(2, Ordering::Relaxed);
        loops[1].open_conns.fetch_add(1, Ordering::Relaxed);
        m.attach_loops(loops);
        let text = m.render(0, &TableStoreStats::default());
        assert!(text.contains("conns_open 3"), "{text}");
        assert!(text.contains("loop_wakeups{loop=0} 5"), "{text}");
        assert!(text.contains("loop_accepts{loop=0} 3"), "{text}");
        assert!(text.contains("loop_partial_reads{loop=1} 2"), "{text}");
        assert!(text.contains("loop_short_writes{loop=1} 1"), "{text}");
        assert!(text.contains("loop_open_conns{loop=1} 1"), "{text}");
    }

    #[test]
    fn live_latency_renders_only_after_a_live_decision() {
        let m = Metrics::new();
        // Pure-VOD metrics carry no live lines at all.
        assert!(!m.render(0, &TableStoreStats::default()).contains("live_latency"));
        m.record_live_latency(2.0);
        m.record_live_latency(2.0);
        m.record_live_latency(8.0);
        let text = m.render(0, &TableStoreStats::default());
        assert!(text.contains("live_latency_count 3"), "{text}");
        // Bucket-resolution quantiles land within a power of two of the
        // true values (2 s and 8 s).
        let p50: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("live_latency_p50_secs "))
            .unwrap()
            .parse()
            .unwrap();
        let p99: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("live_latency_p99_secs "))
            .unwrap()
            .parse()
            .unwrap();
        assert!(p50 >= 2.0 && p50 <= 5.0, "p50 {p50}");
        assert!(p99 >= 8.0 && p99 <= 18.0, "p99 {p99}");
    }

    #[test]
    fn coordinator_counters_render_when_attached() {
        let m = Metrics::new();
        assert!(!m.render(0, &TableStoreStats::default()).contains("coordinator_groups"));
        let stats = Arc::new(CoordinatorStats::default());
        stats.groups.fetch_add(2, Ordering::Relaxed);
        stats.members.fetch_add(9, Ordering::Relaxed);
        stats.joins.fetch_add(11, Ordering::Relaxed);
        stats.leaves.fetch_add(2, Ordering::Relaxed);
        stats.coordinated.fetch_add(140, Ordering::Relaxed);
        stats.fallbacks.fetch_add(13, Ordering::Relaxed);
        m.attach_coordinator(stats);
        let text = m.render(0, &TableStoreStats::default());
        assert!(text.contains("coordinator_groups 2"), "{text}");
        assert!(text.contains("coordinator_members 9"), "{text}");
        assert!(text.contains("coordinator_joins 11"), "{text}");
        assert!(text.contains("coordinator_leaves 2"), "{text}");
        assert!(text.contains("decisions_coordinated 140"), "{text}");
        assert!(text.contains("decisions_scalar_fallback 13"), "{text}");
    }

    #[test]
    fn metrics_render_includes_active_backends_only() {
        let m = Metrics::new();
        m.sessions_registered.fetch_add(3, Ordering::Relaxed);
        m.backend("fastmpc").decisions.fetch_add(7, Ordering::Relaxed);
        m.backend("fastmpc").latency.record(2_000);
        let tables = TableStoreStats {
            hot_entries: 1,
            hot_bytes: 4096,
            hot_hits: 5,
            warm_hits: 2,
            generates: 1,
            evictions: 3,
        };
        let text = m.render(2, &tables);
        assert!(text.contains("sessions_registered 3"));
        assert!(text.contains("sessions_live 2"));
        assert!(text.contains("decisions{backend=fastmpc} 7"));
        assert!(!text.contains("backend=bola"), "idle backends stay out:\n{text}");
    }

    #[test]
    fn table_tier_counters_render_their_own_lines() {
        let m = Metrics::new();
        let tables = TableStoreStats {
            hot_entries: 7,
            hot_bytes: 123_456,
            hot_hits: 40,
            warm_hits: 9,
            generates: 16,
            evictions: 11,
        };
        let text = m.render(0, &tables);
        assert!(text.contains("fastmpc_tables_cached 7"), "{text}");
        assert!(text.contains("table_hot_hits 40"), "{text}");
        assert!(text.contains("table_warm_hits 9"), "{text}");
        assert!(text.contains("table_generates 16"), "{text}");
        assert!(text.contains("table_evictions 11"), "{text}");
        assert!(text.contains("table_hot_bytes 123456"), "{text}");
    }
}
