//! Decision backends and predictors the service can host.
//!
//! [`Backend::build`] mirrors the harness registry's construction recipes
//! exactly (same `paper_default()`s, same [`MpcConfig`] override pattern),
//! so a remote session and its in-process twin run literally the same
//! controller. Oracle predictors are deliberately absent: they need the
//! future of the throughput trace, which only the client-side simulator
//! knows — a server cannot host one, and rejecting them at registration
//! keeps the differential guarantee honest.

use crate::proto::ProtoError;
use abr_baselines::{Bola, BufferBased, DashJs, Festive, RateBased};
use abr_core::{BitrateController, Mpc, MpcConfig};
use abr_fastmpc::{FastMpc, TableHandle};
use abr_predictor::{Ar1, CrossSession, Ewma, HarmonicMean, LastSample, Predictor, SlidingMean};
use abr_video::QoeWeights;

/// Controller families the service hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Rate-based baseline.
    Rb,
    /// Buffer-based baseline (Huang et al.).
    Bb,
    /// FESTIVE.
    Festive,
    /// dash.js rule-based logic.
    DashJs,
    /// BOLA.
    Bola,
    /// FastMPC table lookup (shared process-wide table cache).
    FastMpc,
    /// RobustMPC online solve.
    RobustMpc,
    /// Exact MPC online solve.
    Mpc,
}

impl Backend {
    /// Every backend, benchmark order: the table-lookup path first, then
    /// the online solvers, then the baselines.
    pub const ALL: [Backend; 8] = [
        Backend::FastMpc,
        Backend::RobustMpc,
        Backend::Mpc,
        Backend::Bb,
        Backend::Rb,
        Backend::Festive,
        Backend::DashJs,
        Backend::Bola,
    ];

    /// Wire token (also the `--backend` flag value).
    pub fn token(self) -> &'static str {
        match self {
            Backend::Rb => "rb",
            Backend::Bb => "bb",
            Backend::Festive => "festive",
            Backend::DashJs => "dashjs",
            Backend::Bola => "bola",
            Backend::FastMpc => "fastmpc",
            Backend::RobustMpc => "robustmpc",
            Backend::Mpc => "mpc",
        }
    }

    /// Parses a wire token or paper display name, case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rb" => Some(Backend::Rb),
            "bb" => Some(Backend::Bb),
            "festive" => Some(Backend::Festive),
            "dashjs" | "dash.js" => Some(Backend::DashJs),
            "bola" => Some(Backend::Bola),
            "fastmpc" => Some(Backend::FastMpc),
            "robustmpc" => Some(Backend::RobustMpc),
            "mpc" => Some(Backend::Mpc),
            _ => None,
        }
    }

    /// Whether this backend needs a FastMPC decision table.
    pub fn needs_table(self) -> bool {
        matches!(self, Backend::FastMpc)
    }

    /// Builds a fresh controller; same recipe as the harness registry.
    /// FastMPC accepts a table from either tier of the
    /// [`abr_fastmpc::TableStore`] — hot (owned) or warm (mmap'd view) —
    /// since the two decide bit-identically.
    pub fn build(
        self,
        table: Option<&TableHandle>,
        weights: &QoeWeights,
        horizon: usize,
    ) -> Box<dyn BitrateController> {
        let mpc_cfg = |robust: bool| MpcConfig {
            horizon,
            weights: weights.clone(),
            robust,
            ..MpcConfig::paper_default()
        };
        match self {
            Backend::Rb => Box::new(RateBased::paper_default()),
            Backend::Bb => Box::new(BufferBased::paper_default()),
            Backend::Festive => Box::new(Festive::paper_default()),
            Backend::DashJs => Box::new(DashJs::paper_default()),
            Backend::Bola => Box::new(Bola::reference_default()),
            Backend::FastMpc => Box::new(FastMpc::from_handle(
                table.expect("FastMPC backend requires a decision table").clone(),
            )),
            Backend::RobustMpc => Box::new(Mpc::new(mpc_cfg(true))),
            Backend::Mpc => Box::new(Mpc::new(mpc_cfg(false))),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Predictors the service can maintain server-side. All of these derive
/// their forecasts purely from observed chunk throughputs, which the
/// client reports — no oracle access needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// Harmonic mean of the past 5 chunks (paper default).
    Harmonic,
    /// Arithmetic mean over a window.
    Sliding(usize),
    /// Exponentially weighted moving average.
    Ewma(f64),
    /// The last observed throughput.
    Last,
    /// Log-domain AR(1).
    Ar1(usize),
    /// Crowdsourced prior blended with a 5-chunk harmonic window.
    CrossSession {
        /// Prior throughput estimate, kbps.
        prior_kbps: f64,
        /// Pseudo-observation weight of the prior.
        weight: f64,
    },
}

impl PredictorKind {
    /// Wire encoding.
    pub fn encode(self) -> String {
        match self {
            PredictorKind::Harmonic => "harmonic".to_string(),
            PredictorKind::Sliding(w) => format!("sliding {w}"),
            PredictorKind::Ewma(a) => format!("ewma {a}"),
            PredictorKind::Last => "last".to_string(),
            PredictorKind::Ar1(w) => format!("ar1 {w}"),
            PredictorKind::CrossSession { prior_kbps, weight } => {
                format!("crowd {prior_kbps} {weight}")
            }
        }
    }

    /// Decodes the wire encoding. Oracle predictors are not representable,
    /// so a client can never register one.
    pub fn decode(v: &str) -> Result<Self, ProtoError> {
        let mut parts = v.split_whitespace();
        let num = |p: Option<&str>, what: &'static str| -> Result<f64, ProtoError> {
            p.ok_or(ProtoError::Missing(what))?
                .parse()
                .map_err(|_| ProtoError::Bad(what.to_string()))
        };
        match parts.next() {
            Some("harmonic") => Ok(PredictorKind::Harmonic),
            Some("sliding") => Ok(PredictorKind::Sliding(num(parts.next(), "sliding window")? as usize)),
            Some("ewma") => Ok(PredictorKind::Ewma(num(parts.next(), "ewma alpha")?)),
            Some("last") => Ok(PredictorKind::Last),
            Some("ar1") => Ok(PredictorKind::Ar1(num(parts.next(), "ar1 window")? as usize)),
            Some("crowd") => Ok(PredictorKind::CrossSession {
                prior_kbps: num(parts.next(), "crowd prior")?,
                weight: num(parts.next(), "crowd weight")?,
            }),
            other => Err(ProtoError::Unsupported(format!("predictor {other:?}"))),
        }
    }

    /// Builds a fresh predictor; same recipe as the harness registry.
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Harmonic => Box::new(HarmonicMean::paper_default()),
            PredictorKind::Sliding(w) => Box::new(SlidingMean::new(w)),
            PredictorKind::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorKind::Last => Box::new(LastSample::new()),
            PredictorKind::Ar1(w) => Box::new(Ar1::new(w)),
            PredictorKind::CrossSession { prior_kbps, weight } => {
                Box::new(CrossSession::new(prior_kbps, weight, 5))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;
    use std::sync::Arc;

    #[test]
    fn tokens_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.token()), Some(b));
            assert_eq!(Backend::parse(&b.token().to_ascii_uppercase()), Some(b));
        }
        assert_eq!(Backend::parse("dash.js"), Some(Backend::DashJs));
        assert_eq!(Backend::parse("hal9000"), None);
    }

    #[test]
    fn predictor_kinds_round_trip() {
        for p in [
            PredictorKind::Harmonic,
            PredictorKind::Sliding(8),
            PredictorKind::Ewma(0.375),
            PredictorKind::Last,
            PredictorKind::Ar1(12),
            PredictorKind::CrossSession { prior_kbps: 1500.0, weight: 3.0 },
        ] {
            assert_eq!(PredictorKind::decode(&p.encode()).unwrap(), p);
        }
        assert!(PredictorKind::decode("oracle 0.1").is_err());
    }

    #[test]
    fn builds_match_registry_names() {
        let video = envivio_video();
        let weights = QoeWeights::balanced();
        let table = {
            let mut cfg =
                abr_fastmpc::TableConfig::with_levels(video.ladder().len(), 30.0);
            cfg.weights = weights.clone();
            TableHandle::Owned(Arc::new(abr_fastmpc::FastMpcTable::generate(
                &video, 30.0, cfg,
            )))
        };
        let expect = [
            (Backend::Rb, "RB"),
            (Backend::Bb, "BB"),
            (Backend::Festive, "FESTIVE"),
            (Backend::DashJs, "dash.js"),
            (Backend::Bola, "BOLA"),
            (Backend::FastMpc, "FastMPC"),
            (Backend::RobustMpc, "RobustMPC"),
            (Backend::Mpc, "MPC"),
        ];
        for (backend, name) in expect {
            let c = backend.build(Some(&table), &weights, 5);
            assert_eq!(c.name(), name);
        }
    }
}
