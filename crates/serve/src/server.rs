//! The multi-threaded decision server.
//!
//! A dedicated acceptor thread drains the kernel accept queue eagerly into
//! an unbounded in-process connection queue, so hundreds of simultaneous
//! connects never overflow the listen backlog; a fixed pool of worker
//! threads pops connections and serves them keep-alive, one request per
//! round-trip, through [`AbrService`]. Malformed HTTP gets a `400` and the
//! connection is dropped — the worker itself always survives and moves to
//! the next connection.

use crate::coordinator::{CoordinatorConfig, FairnessCoordinator};
use crate::metrics::Metrics;
use crate::proto::{decode_bulk, encode_bulk_reply, BulkSlot, DecisionRequest, SessionSpec};
use crate::store::{DecideError, SessionStore};
use abr_net::http::{HttpError, Request, Response, MAX_REQUEST_BODY_BYTES};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request router and session logic, independent of any transport.
pub struct AbrService {
    store: SessionStore,
    metrics: Metrics,
    coordinator: FairnessCoordinator,
}

impl AbrService {
    /// A fresh service with a `shards`-way sharded session store and an
    /// unbounded, memory-only table store.
    pub fn new(shards: usize) -> Self {
        Self::with_table_config(shards, abr_fastmpc::TableStoreConfig::default())
    }

    /// [`new`](Self::new) with an explicit tiered-table-store budget and
    /// spill policy.
    pub fn with_table_config(shards: usize, tables: abr_fastmpc::TableStoreConfig) -> Self {
        Self::with_coordinator_config(shards, tables, CoordinatorConfig::default())
    }

    /// [`with_table_config`](Self::with_table_config) with explicit
    /// fairness-coordinator knobs.
    pub fn with_coordinator_config(
        shards: usize,
        tables: abr_fastmpc::TableStoreConfig,
        coordinator: CoordinatorConfig,
    ) -> Self {
        let coordinator = FairnessCoordinator::new(coordinator);
        let metrics = Metrics::new();
        metrics.attach_coordinator(Arc::clone(coordinator.stats()));
        Self {
            store: SessionStore::with_table_config(shards, tables),
            metrics,
            coordinator,
        }
    }

    /// The session store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared-bottleneck fairness coordinator.
    pub fn coordinator(&self) -> &FairnessCoordinator {
        &self.coordinator
    }

    fn reject(&self, resp: Response) -> Response {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        resp
    }

    /// Routes one request to a response.
    pub fn handle(&self, req: &Request) -> Response {
        let body = || String::from_utf8_lossy(&req.body).into_owned();
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/session") => match SessionSpec::decode(&body()) {
                Ok(spec) => {
                    // Group membership is established before the first
                    // decision can arrive; the spec parts the coordinator
                    // needs outlive the store's take-over of the spec.
                    let group = spec
                        .bottleneck
                        .as_ref()
                        .map(|id| (id.clone(), spec.video.clone(), spec.weights.quality.clone()));
                    let sid = self.store.register(spec);
                    if let Some((id, video, quality)) = group {
                        self.coordinator.join(&id, sid, &video, &quality);
                    }
                    self.metrics.sessions_registered.fetch_add(1, Ordering::Relaxed);
                    Response::ok(Bytes::from(format!("sid {sid}\n")), "text/plain")
                }
                Err(e) => self.reject(Response::bad_request(&e.to_string())),
            },
            ("POST", "/decision") => {
                let parsed = match DecisionRequest::decode(&body()) {
                    Ok(p) => p,
                    Err(e) => return self.reject(Response::bad_request(&e.to_string())),
                };
                // Joint allocation (group members only) happens before the
                // shard lock; ungrouped deployments skip it via a lock-free
                // membership check.
                let over = self.coordinator.observe_and_allocate(&parsed);
                let start = Instant::now();
                let outcome = self.store.with_session(parsed.sid, |session| {
                    (
                        session.backend_token(),
                        session.decide_with(&parsed, over),
                        session.last_live_latency_secs(),
                    )
                });
                match outcome {
                    Ok((token, Ok(reply), live_latency)) => {
                        let stats = self.metrics.backend(token);
                        stats.decisions.fetch_add(1, Ordering::Relaxed);
                        stats.latency.record(start.elapsed().as_nanos() as u64);
                        if let Some(latency_secs) = live_latency {
                            self.metrics.record_live_latency(latency_secs);
                        }
                        Response::ok(Bytes::from(reply.encode()), "text/plain")
                    }
                    Ok((_, Err(e), _)) => self.reject(decide_error_response(&e)),
                    Err(e) => self.reject(decide_error_response(&e)),
                }
            }
            ("POST", "/decisions") => {
                let reqs = match decode_bulk(&body()) {
                    Ok(r) => r,
                    Err(e) => return self.reject(Response::bad_request(&e.to_string())),
                };
                // Coordinator passes run in batch order, so a batch
                // carrying several group-mates sees each one's report
                // before the next allocation — same as scalar arrival.
                let overrides: Vec<Option<usize>> = reqs
                    .iter()
                    .map(|r| self.coordinator.observe_and_allocate(r))
                    .collect();
                let start = Instant::now();
                let outcomes = self.store.decide_bulk_with(&reqs, &overrides);
                // One store pass served the whole batch; attribute the
                // amortized per-decision service time to each slot.
                let per_slot_nanos =
                    start.elapsed().as_nanos() as u64 / outcomes.len().max(1) as u64;
                let slots: Vec<BulkSlot> = outcomes
                    .into_iter()
                    .zip(&reqs)
                    .map(|((token, result), req)| match result {
                        Ok(reply) => {
                            let stats = self
                                .metrics
                                .backend(token.expect("successful decide names its backend"));
                            stats.decisions.fetch_add(1, Ordering::Relaxed);
                            stats.latency.record(per_slot_nanos);
                            // Live slots carry a clock; VOD batches skip
                            // the extra per-session lock entirely.
                            if req.now_secs.is_some() {
                                if let Ok(Some(latency_secs)) = self
                                    .store
                                    .with_session(req.sid, |s| s.last_live_latency_secs())
                                {
                                    self.metrics.record_live_latency(latency_secs);
                                }
                            }
                            Ok(reply)
                        }
                        Err(e) => {
                            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                            Err((decide_error_status(&e), e.to_string()))
                        }
                    })
                    .collect();
                Response::ok(Bytes::from(encode_bulk_reply(&slots)), "text/plain")
            }
            ("POST", "/close") => match parse_close_sid(&body()) {
                Some(sid) if self.store.remove(sid) => {
                    self.coordinator.leave(sid);
                    self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    Response::ok(Bytes::from(format!("closed {sid}\n")), "text/plain")
                }
                Some(sid) => {
                    self.reject(decide_error_response(&DecideError::UnknownSession(sid)))
                }
                None => self.reject(Response::bad_request("close needs `sid N`")),
            },
            ("GET", "/metrics") => Response::ok(
                Bytes::from(
                    self.metrics
                        .render(self.store.len(), &self.store.tables().stats()),
                ),
                "text/plain",
            ),
            _ => self.reject(Response::not_found()),
        }
    }
}

fn parse_close_sid(body: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix("sid "))
        .and_then(|v| v.trim().parse().ok())
}

/// The status the scalar `/decision` endpoint answers with for `e` — and
/// the status a bulk reply slot carries, so per-slot refusals and whole
/// responses speak the same language.
fn decide_error_status(e: &DecideError) -> u16 {
    match e {
        DecideError::UnknownSession(_) => 404,
        DecideError::OutOfOrder { .. } => 409,
        DecideError::SessionComplete => 410,
        DecideError::BadLevel(_) => 400,
        DecideError::MissingClock => 400,
    }
}

fn decide_error_response(e: &DecideError) -> Response {
    let mut resp = Response::ok(Bytes::from(format!("error: {e}\n")), "text/plain");
    resp.status = decide_error_status(e);
    resp
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.queue.lock().unwrap().push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            queue = self.ready.wait(queue).unwrap();
        }
    }
}

/// A running decision server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<AbrService>,
    conns: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Spawns the decision server.
pub struct DecisionServer;

impl DecisionServer {
    /// Binds a loopback listener and starts `workers` worker threads (at
    /// least 1) plus the acceptor, with the default request-body cap.
    pub fn spawn(workers: usize) -> std::io::Result<ServerHandle> {
        Self::spawn_with_body_cap(workers, MAX_REQUEST_BODY_BYTES)
    }

    /// [`spawn`](Self::spawn) with an explicit request-body cap in bytes.
    /// A request declaring a larger `Content-Length` is answered `413`
    /// without buffering the body. Deployments coalescing very large
    /// batches onto `POST /decisions` can raise the cap; a server exposed
    /// beyond loopback would lower it.
    pub fn spawn_with_body_cap(workers: usize, body_cap: usize) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let workers = workers.max(1);
        // Shard the store by worker count so independent sessions served in
        // parallel rarely share a lock.
        let service = Arc::new(AbrService::new(workers * 4));
        let conns = Arc::new(ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        let acceptor = {
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if conns.stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = stream.set_nodelay(true);
                        // Backstop against a peer that connects and goes
                        // silent forever.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
                        conns.push(stream);
                    }
                }
            })
        };

        let worker_handles = (0..workers)
            .map(|_| {
                let service = Arc::clone(&service);
                let conns = Arc::clone(&conns);
                std::thread::spawn(move || {
                    while let Some(stream) = conns.pop() {
                        let _ = serve_connection(&service, stream, body_cap);
                    }
                })
            })
            .collect();

        Ok(ServerHandle {
            addr,
            service,
            conns,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

/// Serves one keep-alive connection until the peer closes, a `connection:
/// close` is exchanged, or the request stream turns malformed. An
/// over-cap body is answered `413` (and the connection dropped, since the
/// unread body would poison keep-alive framing).
fn serve_connection(
    service: &AbrService,
    stream: TcpStream,
    body_cap: usize,
) -> Result<(), HttpError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        match Request::read_from_with_cap(&mut reader, body_cap) {
            Ok(None) => return Ok(()), // peer closed cleanly
            Ok(Some(req)) => {
                let close = req.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
                let resp = service.handle(&req);
                resp.write_to(&mut writer)?;
                if close {
                    return Ok(());
                }
            }
            Err(HttpError::Malformed(what)) => {
                let _ = Response::bad_request(&what).write_to(&mut writer);
                return Ok(());
            }
            Err(HttpError::BodyTooLarge { len, cap }) => {
                let _ = Response::payload_too_large(len, cap).write_to(&mut writer);
                return Ok(());
            }
            Err(HttpError::TruncatedBody { expected, got }) => {
                let _ = Response::bad_request(&format!(
                    "truncated body: {got} of {expected} bytes"
                ))
                .write_to(&mut writer);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

impl ServerHandle {
    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service, for in-process inspection (metrics, store).
    pub fn service(&self) -> &AbrService {
        &self.service
    }

    /// Stops the acceptor and workers, waiting for them to exit.
    pub fn shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.conns.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        self.conns.ready.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use abr_net::http::HttpClient;
    use abr_video::envivio_video;

    fn client(handle: &ServerHandle) -> HttpClient<TcpStream> {
        HttpClient::new(TcpStream::connect(handle.addr()).unwrap())
    }

    #[test]
    fn registers_decides_and_reports_metrics() {
        let handle = DecisionServer::spawn(2).unwrap();
        let mut c = client(&handle);
        let spec = SessionSpec::paper_default(Backend::Bb, envivio_video());
        let resp = c
            .post("/session", Bytes::from(spec.encode()), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        let sid: u64 = String::from_utf8_lossy(&resp.body)
            .trim()
            .strip_prefix("sid ")
            .unwrap()
            .parse()
            .unwrap();

        let req = DecisionRequest { sid, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None };
        let resp = c
            .post("/decision", Bytes::from(req.encode()), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).starts_with("level "));

        let metrics = c.get("/metrics").unwrap();
        let text = String::from_utf8_lossy(&metrics.body).into_owned();
        assert!(text.contains("sessions_registered 1"), "{text}");
        assert!(text.contains("decisions{backend=bb} 1"), "{text}");

        let resp = c
            .post("/close", Bytes::from(format!("sid {sid}\n")), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(handle.service().store().is_empty());
    }

    #[test]
    fn protocol_errors_map_to_statuses() {
        let handle = DecisionServer::spawn(1).unwrap();
        let mut c = client(&handle);
        // Unknown endpoint.
        assert_eq!(c.get("/nope").unwrap().status, 404);
        // Garbage registration.
        assert_eq!(
            c.post("/session", Bytes::from_static(b"nonsense"), "text/plain")
                .unwrap()
                .status,
            400
        );
        // Decision for a session that does not exist.
        let req = DecisionRequest { sid: 777, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None };
        assert_eq!(
            c.post("/decision", Bytes::from(req.encode()), "text/plain")
                .unwrap()
                .status,
            404
        );
        // Out-of-order chunk on a real session.
        let spec = SessionSpec::paper_default(Backend::Rb, envivio_video());
        let resp = c.post("/session", Bytes::from(spec.encode()), "text/plain").unwrap();
        let sid: u64 = String::from_utf8_lossy(&resp.body)
            .trim()
            .strip_prefix("sid ")
            .unwrap()
            .parse()
            .unwrap();
        let skip = DecisionRequest {
            sid,
            chunk: 3,
            buffer_secs: 1.0,
            last: Some(crate::proto::LastChunk {
                level: 0,
                throughput_kbps: 500.0,
                download_secs: 1.0,
            }),
            now_secs: None,
        };
        assert_eq!(
            c.post("/decision", Bytes::from(skip.encode()), "text/plain")
                .unwrap()
                .status,
            409
        );
        // Closing twice: second close is a 404.
        assert_eq!(
            c.post("/close", Bytes::from(format!("sid {sid}\n")), "text/plain")
                .unwrap()
                .status,
            200
        );
        assert_eq!(
            c.post("/close", Bytes::from(format!("sid {sid}\n")), "text/plain")
                .unwrap()
                .status,
            404
        );
        // The worker survived all of that.
        assert_eq!(c.get("/metrics").unwrap().status, 200);
    }

    #[test]
    fn malformed_http_gets_400_and_workers_survive() {
        use std::io::Write as _;
        let handle = DecisionServer::spawn(1).unwrap();
        let mut bad = TcpStream::connect(handle.addr()).unwrap();
        bad.write_all(b"POST /decision HTTP/1.1\r\n\r\n").unwrap();
        let resp = Response::read_from(&mut BufReader::new(&mut bad)).unwrap();
        assert_eq!(resp.status, 400);
        drop(bad);
        // Same (only) worker serves the next connection fine.
        let mut c = client(&handle);
        assert_eq!(c.get("/metrics").unwrap().status, 200);
    }

    #[test]
    fn bulk_endpoint_answers_positionally() {
        use crate::proto::{decode_bulk_reply, encode_bulk};
        let handle = DecisionServer::spawn(2).unwrap();
        let mut c = client(&handle);
        let spec = SessionSpec::paper_default(Backend::FastMpc, envivio_video());
        let mut sids = Vec::new();
        for _ in 0..3 {
            let resp = c
                .post("/session", Bytes::from(spec.encode()), "text/plain")
                .unwrap();
            let sid: u64 = String::from_utf8_lossy(&resp.body)
                .trim()
                .strip_prefix("sid ")
                .unwrap()
                .parse()
                .unwrap();
            sids.push(sid);
        }
        // Three live sessions plus one unknown sid in slot 2.
        let reqs: Vec<DecisionRequest> = [sids[0], sids[1], 9_999, sids[2]]
            .iter()
            .map(|&sid| DecisionRequest { sid, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None })
            .collect();
        let resp = c
            .post("/decisions", Bytes::from(encode_bulk(&reqs)), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        let slots = decode_bulk_reply(&String::from_utf8_lossy(&resp.body)).unwrap();
        assert_eq!(slots.len(), 4);
        assert!(slots[0].is_ok() && slots[1].is_ok() && slots[3].is_ok());
        let (status, msg) = slots[2].as_ref().unwrap_err();
        assert_eq!(*status, 404);
        assert!(msg.contains("9999"), "{msg}");
        // Server-side metrics account the batch per slot: three decisions,
        // one rejection.
        let text = String::from_utf8_lossy(&c.get("/metrics").unwrap().body).into_owned();
        assert!(text.contains("decisions{backend=fastmpc} 3"), "{text}");
        assert!(text.contains("requests_rejected 1"), "{text}");
        // Garbage bulk framing is a 400 for the whole request.
        assert_eq!(
            c.post("/decisions", Bytes::from_static(b"nonsense"), "text/plain")
                .unwrap()
                .status,
            400
        );
    }

    #[test]
    fn body_cap_is_configurable_and_maps_to_413() {
        let handle = DecisionServer::spawn_with_body_cap(1, 64).unwrap();
        let mut c = client(&handle);
        // A registration body is far over a 64-byte cap: 413, not 400.
        let spec = SessionSpec::paper_default(Backend::Rb, envivio_video());
        let resp = c
            .post("/session", Bytes::from(spec.encode()), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 413);
        // The worker survives and small requests still fit under the cap.
        let mut c = client(&handle);
        assert_eq!(c.get("/metrics").unwrap().status, 200);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_threads() {
        let mut handle = DecisionServer::spawn(3).unwrap();
        let mut c = client(&handle);
        assert_eq!(c.get("/metrics").unwrap().status, 200);
        // Release the keep-alive connection so its worker can drain before
        // shutdown joins the pool.
        drop(c);
        handle.shutdown();
        handle.shutdown();
        assert!(TcpStream::connect(handle.addr()).is_err() || {
            // The OS may accept briefly after close on some platforms; a
            // subsequent request must fail either way.
            let mut c = HttpClient::new(TcpStream::connect(handle.addr()).unwrap());
            c.get("/metrics").is_err()
        });
    }
}
