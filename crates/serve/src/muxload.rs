//! The multiplexed load generator.
//!
//! [`crate::loadgen`] spends one OS thread and one socket per session —
//! honest, but it cannot take the event-driven server anywhere near its
//! capacity: a few hundred threads in, the *client* becomes the
//! bottleneck. [`run_mux_load`] is the symmetric rewrite: a few event-loop
//! threads multiplex thousands of virtual closed-loop sessions over a
//! bounded pool of pipelined keep-alive connections.
//!
//! Each loop thread owns a disjoint slice of sessions *and* the
//! connections they ride on, so there is no cross-thread session state.
//! A virtual session is a small state machine —
//! register → decide… → close — driven by [`abr_sim::SessionStepper`];
//! its requests are serialized onto its connection's output buffer, and a
//! per-connection FIFO matches pipelined responses back to the sessions
//! that asked. Latency is measured from enqueue to response parse: the
//! full client-observed cost, queueing included.
//!
//! Two properties carry over from the scalar generator unchanged:
//!
//! * **Bit-identity**: every virtual session is re-run in process after
//!   the timed window and diffed chunk-by-chunk (`to_bits` on every
//!   float). Twin verification is *deferred* — the measured window
//!   contains only wire traffic, unlike the legacy generator which
//!   interleaved twin computation with the drive.
//! * **Engine independence**: the generator speaks the same protocol as
//!   both servers, so CI can drive the threaded and the event-driven
//!   engine with the same seed and byte-diff the recorded decision
//!   sequences.

use crate::backend::{Backend, PredictorKind};
use crate::loadgen::{diff_sessions, LoadReport};
use crate::metrics::exact_quantile_us;
use crate::proto::{DecisionReply, DecisionRequest, SessionSpec};
use abr_core::Decision;
use abr_net::http::{ParseStep, Request, ResponseParser};
use abr_net::poll::{self, Epoll, Event, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use abr_predictor::Predictor;
use abr_sim::{
    run_session, ChunkDownloader, SessionResult, SessionScratch, SessionStepper, TraceDownloader,
};
use abr_trace::{Dataset, Trace};
use abr_video::{envivio_video, LevelIdx, LiveSchedule, Video};
use bytes::Bytes;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

/// A video catalog driven through the multiplexed generator: each virtual
/// session plays one catalog entry (the harness assigns entries by a Zipf
/// draw for the catalog benchmark). Without a catalog every session plays
/// the paper's Envivio video, as before.
#[derive(Debug, Clone)]
pub struct MuxCatalog {
    /// The distinct videos.
    pub videos: Vec<Video>,
    /// `assignment[i]` is the index into [`videos`](Self::videos) that
    /// session `i` plays; must cover every session.
    pub assignment: Vec<usize>,
}

impl MuxCatalog {
    /// The video session `i` plays.
    fn video(&self, i: usize) -> &Video {
        &self.videos[self.assignment[i]]
    }
}

/// Multiplexed-load configuration.
#[derive(Debug, Clone)]
pub struct MuxOptions {
    /// Virtual closed-loop sessions to run.
    pub sessions: usize,
    /// Decision backend every session registers.
    pub backend: Backend,
    /// Predictor every session registers (and the twin runs).
    pub predictor: PredictorKind,
    /// Trace-generation seed (same seed ⇒ same traces as `run_load`).
    pub seed: u64,
    /// Run the in-process twins (after the timed window) and diff.
    pub verify: bool,
    /// Connections in the pool; 0 picks `min(sessions, 1024)`.
    pub conns: usize,
    /// Client event-loop threads.
    pub loops: usize,
    /// Per-session video assignment; `None` plays the Envivio video
    /// everywhere.
    pub catalog: Option<Arc<MuxCatalog>>,
    /// Live availability schedule every session registers (and the twin
    /// runs with); `None` drives VOD sessions, the pre-live wire exactly.
    pub live: Option<LiveSchedule>,
    /// QoE latency weight registered for live sessions; ignored for VOD.
    pub latency_weight: f64,
}

impl MuxOptions {
    /// Defaults matching [`crate::LoadOptions::new`]: FastMPC, harmonic
    /// prediction, seed 42, verification on; auto connection pool, two
    /// loop threads.
    pub fn new(sessions: usize) -> Self {
        Self {
            sessions,
            backend: Backend::FastMpc,
            predictor: PredictorKind::Harmonic,
            seed: 42,
            verify: true,
            conns: 0,
            loops: 2,
            catalog: None,
            live: None,
            latency_weight: 0.0,
        }
    }

    /// The registration spec for one session over `video` — the same
    /// knobs feed the in-process twin through [`SessionSpec::sim_config`].
    fn spec_for(&self, video: Video) -> SessionSpec {
        let mut spec = SessionSpec::paper_default(self.backend, video);
        spec.predictor = self.predictor;
        if let Some(live) = self.live {
            spec.live = Some(live);
            spec.weights.w_lat = self.latency_weight;
        }
        spec
    }

    /// The video session `i` plays under this configuration.
    fn video_of<'a>(&'a self, default: &'a Video, i: usize) -> &'a Video {
        match &self.catalog {
            Some(c) => c.video(i),
            None => default,
        }
    }

    fn effective_conns(&self) -> usize {
        if self.conns == 0 {
            self.sessions.clamp(1, 1024)
        } else {
            self.conns.min(self.sessions.max(1))
        }
    }
}

/// What a multiplexed run produced: the standard report plus one line per
/// session pinning its full decision sequence (for cross-engine diffs).
#[derive(Debug, Clone)]
pub struct MuxReport {
    /// Aggregate throughput/latency/mismatch report (same shape as the
    /// scalar generator's, `batch` = 1).
    pub report: LoadReport,
    /// `session {i}: <levels> qoe <bits> total <bits>` — one line per
    /// session, in session order. Byte-identical across server engines
    /// for the same seed.
    pub sequences: Vec<String>,
}

/// Runs `opts.sessions` virtual sessions against the server at `addr`
/// over a multiplexed connection pool.
///
/// # Panics
///
/// Panics on any connection failure, protocol violation, or refused
/// request — like the scalar generator, this is a test harness, and a
/// silent partial run would corrupt the differential guarantee.
pub fn run_mux_load(addr: SocketAddr, opts: &MuxOptions) -> MuxReport {
    let video = envivio_video();
    if let Some(catalog) = &opts.catalog {
        assert!(
            catalog.assignment.len() >= opts.sessions,
            "catalog assigns {} sessions, run asks for {}",
            catalog.assignment.len(),
            opts.sessions
        );
        assert!(
            catalog.assignment.iter().all(|&v| v < catalog.videos.len()),
            "catalog assignment indexes past its {} videos",
            catalog.videos.len()
        );
    }
    let sim_cfg = opts.spec_for(video.clone()).sim_config();
    let traces: Vec<Trace> = Dataset::Fcc.generate(opts.seed, opts.sessions);
    let loops = opts.loops.max(1).min(opts.sessions.max(1));
    let conns = opts.effective_conns();

    // Partition sessions (and their share of the pool) across loop
    // threads: each thread is fully independent.
    let per = opts.sessions.div_ceil(loops);
    let started = Instant::now();
    let mut shards: Vec<ThreadOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .chunks(per.max(1))
            .enumerate()
            .map(|(t, slice)| {
                let video = &video;
                let sim_cfg = &sim_cfg;
                let conns_t = (conns.div_ceil(loops)).clamp(1, slice.len());
                scope.spawn(move || {
                    drive_mux(addr, opts, video, sim_cfg, t * per, slice, conns_t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Twin verification runs *after* the timed window, parallel over the
    // same partition. The twins' tables come from a client-side unbounded
    // store, so a catalog run generates each distinct video's table once
    // no matter how its sessions are spread across shards.
    let mismatch_details: Vec<String> = if opts.verify {
        let tables = abr_fastmpc::TableStore::new();
        let horizon = SessionSpec::paper_default(opts.backend, video.clone()).horizon;
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    let video = &video;
                    let sim_cfg = &sim_cfg;
                    let tables = &tables;
                    scope.spawn(move || {
                        let mut found = Vec::new();
                        for (i, remote_result) in
                            shard.outs.iter().enumerate()
                        {
                            let session_video = opts.video_of(video, shard.base + i);
                            let table = opts.backend.needs_table().then(|| {
                                // Mirror the server's table construction
                                // exactly: live sessions run against the
                                // effective (live-clamped) cap with the
                                // full truncated-horizon slice range.
                                let cap = match &sim_cfg.live {
                                    Some(l) => sim_cfg.buffer_max_secs.min(l.max_buffer_secs),
                                    None => sim_cfg.buffer_max_secs,
                                };
                                let mut cfg = abr_fastmpc::TableConfig::with_levels(
                                    session_video.ladder().len(),
                                    cap,
                                );
                                cfg.weights = sim_cfg.weights.clone();
                                if sim_cfg.live.is_some() {
                                    let slices = cfg.horizon;
                                    cfg = cfg.live_slices(slices);
                                }
                                tables.ensure(session_video, cap, &cfg)
                            });
                            let mut local = opts.backend.build(
                                table.as_ref(),
                                &sim_cfg.weights,
                                horizon,
                            );
                            let local_result = run_session(
                                local.as_mut(),
                                opts.predictor.build(),
                                &shard.traces[i],
                                session_video,
                                sim_cfg,
                            );
                            if let Some(d) = diff_sessions(
                                shard.base + i,
                                remote_result,
                                &local_result,
                            ) {
                                found.push(d);
                            }
                        }
                        found
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    } else {
        Vec::new()
    };

    let mut latencies: Vec<u64> = shards
        .iter_mut()
        .flat_map(|s| std::mem::take(&mut s.latencies_nanos))
        .collect();
    latencies.sort_unstable();
    let decisions: u64 = shards
        .iter()
        .map(|s| s.outs.iter().map(|o| o.records.len() as u64).sum::<u64>())
        .sum();
    let sequences: Vec<String> = shards
        .iter()
        .flat_map(|s| {
            s.outs.iter().enumerate().map(move |(i, out)| {
                let levels: Vec<String> =
                    out.records.iter().map(|r| r.level.0.to_string()).collect();
                format!(
                    "session {}: {} qoe {:016x} total {:016x}",
                    s.base + i,
                    levels.join(" "),
                    out.qoe.qoe.to_bits(),
                    out.total_secs.to_bits(),
                )
            })
        })
        .collect();
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1_000.0
    };

    MuxReport {
        report: LoadReport {
            backend: opts.backend,
            sessions: opts.sessions,
            batch: 1,
            decisions,
            elapsed_secs,
            decisions_per_sec: decisions as f64 / elapsed_secs.max(1e-9),
            mean_us,
            p50_us: exact_quantile_us(&latencies, 0.50),
            p90_us: exact_quantile_us(&latencies, 0.90),
            p99_us: exact_quantile_us(&latencies, 0.99),
            p999_us: exact_quantile_us(&latencies, 0.999),
            mismatches: mismatch_details.len(),
            mismatch_details,
        },
        sequences,
    }
}

/// One loop thread's output, carried back for deferred verification.
struct ThreadOut {
    base: usize,
    traces: Vec<Trace>,
    outs: Vec<SessionResult>,
    latencies_nanos: Vec<u64>,
}

/// What a pipelined request is waiting for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Register,
    Decide,
    Close,
}

struct Inflight {
    session: usize,
    kind: Kind,
    sent_at: Instant,
}

/// One pipelined keep-alive connection and the FIFO matching its
/// responses back to sessions.
struct MuxConn {
    /// `None` once every session on this connection has finished and the
    /// socket was closed (client closes first — this also frees a worker
    /// on the thread-per-connection engine for still-queued connections).
    stream: Option<TcpStream>,
    parser: ResponseParser,
    out: Vec<u8>,
    out_pos: usize,
    inflight: VecDeque<Inflight>,
    /// Sessions still riding this connection.
    live: usize,
    /// Currently registered interest (always `EPOLLIN`, plus `EPOLLOUT`
    /// while `out` has unsent bytes).
    interest: u32,
}

/// Virtual-session wire state (the simulation state lives in the
/// stepper of the same index).
struct VSession {
    conn: usize,
    sid: u64,
    done: bool,
}

/// Drives `traces.len()` virtual sessions (global indices starting at
/// `base`) over `n_conns` connections on one event loop.
fn drive_mux(
    addr: SocketAddr,
    opts: &MuxOptions,
    video: &abr_video::Video,
    sim_cfg: &abr_sim::SimConfig,
    base: usize,
    traces: &[Trace],
    n_conns: usize,
) -> ThreadOut {
    let n = traces.len();
    let epoll = Epoll::new().expect("epoll_create1");
    let mut conns: Vec<MuxConn> = (0..n_conns)
        .map(|c| {
            let stream = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("conn {c} at base {base}: connect: {e}"));
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            epoll
                .add(stream.as_raw_fd(), EPOLLIN, c as u64)
                .expect("epoll add");
            MuxConn {
                stream: Some(stream),
                parser: ResponseParser::new(),
                out: Vec::new(),
                out_pos: 0,
                inflight: VecDeque::new(),
                live: 0,
                interest: EPOLLIN,
            }
        })
        .collect();
    let mut sessions: Vec<VSession> = (0..n)
        .map(|i| VSession { conn: i % n_conns, sid: 0, done: false })
        .collect();
    for s in &sessions {
        conns[s.conn].live += 1;
    }

    let mut scratches: Vec<SessionScratch> = traces.iter().map(|_| SessionScratch::new()).collect();
    let mut outs: Vec<SessionResult> = traces.iter().map(|_| SessionResult::default()).collect();
    let mut latencies_nanos: Vec<u64> = Vec::new();
    {
        let mut steppers: Vec<_> = scratches
            .iter_mut()
            .zip(outs.iter_mut())
            .zip(traces)
            .enumerate()
            .map(|(i, ((scratch, out), trace))| {
                SessionStepper::start(
                    scratch,
                    out,
                    opts.predictor.build(),
                    TraceDownloader::new(trace),
                    trace,
                    opts.video_of(video, base + i),
                    sim_cfg,
                )
            })
            .collect();

        // Kick off every session: pipeline the registrations.
        for i in 0..n {
            let spec = opts.spec_for(opts.video_of(video, base + i).clone());
            enqueue(
                &mut conns[sessions[i].conn],
                i,
                Kind::Register,
                &Request::post("/session", Bytes::from(spec.encode()), "text/plain"),
            );
        }
        for c in 0..n_conns {
            flush(&epoll, &mut conns[c], c, base);
        }

        let mut finished = 0usize;
        let mut events = vec![Event::default(); 256];
        let mut buf = vec![0u8; 64 * 1024];
        while finished < n {
            let n_ev = epoll.wait(&mut events, 1_000).expect("epoll wait");
            for ev in events.iter().take(n_ev).copied() {
                let c = ev.token() as usize;
                let Some(fd) = conns[c].stream.as_ref().map(|s| s.as_raw_fd()) else {
                    continue; // already closed earlier in this batch
                };
                if ev.readiness() & (EPOLLERR | EPOLLHUP) != 0 {
                    panic!("conn {c} at base {base}: peer error/hangup mid-run");
                }
                if ev.writable() {
                    flush(&epoll, &mut conns[c], c, base);
                }
                if ev.readable() {
                    loop {
                        match poll::read(fd, &mut buf) {
                            Ok(Some(0)) => {
                                panic!("conn {c} at base {base}: server closed mid-run")
                            }
                            Ok(Some(got)) => {
                                conns[c].parser.feed(&buf[..got]);
                                finished += drain_responses(
                                    &mut conns[c],
                                    &mut sessions,
                                    &mut steppers,
                                    &mut latencies_nanos,
                                    base,
                                );
                                if got < buf.len() {
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => panic!("conn {c} at base {base}: read: {e}"),
                        }
                    }
                    flush(&epoll, &mut conns[c], c, base);
                }
                // Every session on this connection done and every
                // response consumed: close it now. Client-closes-first
                // keeps the server side out of TIME_WAIT, and on the
                // thread-per-connection engine it releases the worker for
                // connections still waiting in its accept queue.
                if conns[c].live == 0 && conns[c].inflight.is_empty() {
                    if let Some(s) = conns[c].stream.take() {
                        let _ = epoll.delete(s.as_raw_fd());
                    }
                }
            }
        }

        for s in steppers {
            // Same label the scalar path uses, keeping results
            // byte-identical across generators.
            s.finish("remote");
        }
    }

    ThreadOut {
        base,
        traces: traces.to_vec(),
        outs,
        latencies_nanos,
    }
}

/// Serializes `req` onto the connection and records who is waiting.
fn enqueue(conn: &mut MuxConn, session: usize, kind: Kind, req: &Request) {
    req.write_to(&mut conn.out).expect("serialize into Vec");
    conn.inflight.push_back(Inflight {
        session,
        kind,
        sent_at: Instant::now(),
    });
}

/// Writes as much buffered output as the socket accepts, keeping
/// `EPOLLOUT` interest registered exactly while bytes remain.
fn flush(epoll: &Epoll, conn: &mut MuxConn, c: usize, base: usize) {
    let Some(fd) = conn.stream.as_ref().map(|s| s.as_raw_fd()) else {
        return;
    };
    while conn.out_pos < conn.out.len() {
        match poll::write(fd, &conn.out[conn.out_pos..]) {
            Ok(Some(k)) => conn.out_pos += k,
            Ok(None) => break,
            Err(e) => panic!("conn {c} at base {base}: write: {e}"),
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    let want = if conn.out_pos < conn.out.len() {
        EPOLLIN | EPOLLOUT
    } else {
        EPOLLIN
    };
    if want != conn.interest && epoll.modify(fd, want, c as u64).is_ok() {
        conn.interest = want;
    }
}

/// Drains every complete pipelined response, advancing the owning
/// sessions' state machines. Returns how many sessions finished.
fn drain_responses<P: Predictor, D: ChunkDownloader>(
    conn: &mut MuxConn,
    sessions: &mut [VSession],
    steppers: &mut [SessionStepper<'_, P, D>],
    latencies_nanos: &mut Vec<u64>,
    base: usize,
) -> usize {
    let mut newly_done = 0;
    loop {
        let resp = match conn.parser.next_response() {
            ParseStep::Complete(r) => r,
            ParseStep::Incomplete => return newly_done,
            ParseStep::Failed { error, .. } => {
                panic!("response stream at base {base} poisoned: {error}")
            }
        };
        let waiter = conn
            .inflight
            .pop_front()
            .unwrap_or_else(|| panic!("unsolicited response at base {base}"));
        let i = waiter.session;
        if resp.status != 200 {
            panic!(
                "session {}: {} refused: {} {}",
                base + i,
                match waiter.kind {
                    Kind::Register => "register",
                    Kind::Decide => "decide",
                    Kind::Close => "close",
                },
                resp.status,
                String::from_utf8_lossy(&resp.body)
            );
        }
        match waiter.kind {
            Kind::Register => {
                let body = String::from_utf8_lossy(&resp.body);
                sessions[i].sid = body
                    .trim()
                    .strip_prefix("sid ")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        panic!("session {}: bad register reply {body:?}", base + i)
                    });
                advance(conn, sessions, steppers, i);
            }
            Kind::Decide => {
                latencies_nanos.push(waiter.sent_at.elapsed().as_nanos() as u64);
                let body = String::from_utf8_lossy(&resp.body);
                let reply = DecisionReply::decode(&body)
                    .unwrap_or_else(|e| panic!("session {}: bad reply: {e}", base + i));
                steppers[i].apply(Decision {
                    level: LevelIdx(reply.level),
                    startup_wait_secs: reply.startup_wait_secs,
                });
                advance(conn, sessions, steppers, i);
            }
            Kind::Close => {
                sessions[i].done = true;
                conn.live -= 1;
                newly_done += 1;
            }
        }
    }
}

/// Sends the session's next request: another decision while the trace
/// has chunks left, the close otherwise.
fn advance<P: Predictor, D: ChunkDownloader>(
    conn: &mut MuxConn,
    sessions: &mut [VSession],
    steppers: &mut [SessionStepper<'_, P, D>],
    i: usize,
) {
    if steppers[i].is_done() {
        let body = format!("sid {}\n", sessions[i].sid);
        enqueue(
            conn,
            i,
            Kind::Close,
            &Request::post("/close", Bytes::from(body), "text/plain"),
        );
    } else {
        let req = DecisionRequest::from_context(sessions[i].sid, &steppers[i].context());
        enqueue(
            conn,
            i,
            Kind::Decide,
            &Request::post("/decision", Bytes::from(req.encode()), "text/plain"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventConfig, EventServer};
    use crate::server::DecisionServer;

    #[test]
    fn mux_load_against_event_server_is_bit_identical() {
        let handle = EventServer::spawn(EventConfig {
            loops: 2,
            ..EventConfig::default()
        })
        .unwrap();
        let mut opts = MuxOptions::new(48);
        opts.backend = Backend::Bb;
        opts.conns = 6;
        let report = run_mux_load(handle.addr(), &opts);
        assert_eq!(report.report.sessions, 48);
        assert_eq!(
            report.report.mismatches, 0,
            "{:#?}",
            report.report.mismatch_details
        );
        assert!(report.report.decisions > 0);
        assert_eq!(report.sequences.len(), 48);
    }

    #[test]
    fn decision_sequences_are_identical_across_server_engines() {
        // The cross-engine contract in miniature: same seed, one run
        // against the threaded server, one against the event-driven
        // server — the recorded decision sequences must be byte-equal.
        let mut threaded = DecisionServer::spawn(4).unwrap();
        let event = EventServer::spawn(EventConfig {
            loops: 2,
            ..EventConfig::default()
        })
        .unwrap();
        let mut opts = MuxOptions::new(16);
        opts.backend = Backend::Rb;
        opts.conns = 4;
        opts.verify = false;
        let a = run_mux_load(threaded.addr(), &opts);
        let b = run_mux_load(event.addr(), &opts);
        assert_eq!(a.sequences, b.sequences);
        threaded.shutdown();
    }

    #[test]
    fn live_mux_load_is_bit_identical_and_reports_latency() {
        // The wire twin gate for live sessions: virtual live sessions
        // through the event engine must replay bit-identically in process,
        // and the server's /metrics must have seen their latencies.
        let handle = EventServer::spawn(EventConfig {
            loops: 2,
            ..EventConfig::default()
        })
        .unwrap();
        for backend in [Backend::RobustMpc, Backend::FastMpc, Backend::Bb] {
            let mut opts = MuxOptions::new(12);
            opts.backend = backend;
            opts.conns = 4;
            opts.live = Some(LiveSchedule {
                encode_delay_secs: 2.0,
                max_buffer_secs: 12.0,
            });
            opts.latency_weight = 0.1;
            let report = run_mux_load(handle.addr(), &opts);
            assert_eq!(
                report.report.mismatches, 0,
                "{backend:?}: {:#?}",
                report.report.mismatch_details
            );
            assert_eq!(report.sequences.len(), 12);
        }
        assert!(
            handle.service().metrics().live_latency.count() > 0,
            "live decisions must feed the latency histogram"
        );
    }

    #[test]
    fn catalog_sessions_verify_and_generate_each_table_once() {
        use abr_video::{Ladder, VideoBuilder};
        // Three small distinct videos; 12 sessions spread across them.
        let videos: Vec<Video> = (0..3u32)
            .map(|v| {
                let levels = (0..4 + v as usize)
                    .map(|l| 300.0 * (v as f64 + 1.0) * 1.6f64.powi(l as i32))
                    .collect();
                VideoBuilder::new(Ladder::new(levels).unwrap())
                    .chunks(12)
                    .chunk_secs(4.0)
                    .cbr()
            })
            .collect();
        let assignment: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let handle = EventServer::spawn(EventConfig {
            loops: 1,
            ..EventConfig::default()
        })
        .unwrap();
        let mut opts = MuxOptions::new(12);
        opts.backend = Backend::FastMpc;
        opts.conns = 3;
        opts.loops = 1;
        opts.catalog = Some(Arc::new(MuxCatalog { videos, assignment }));
        let report = run_mux_load(handle.addr(), &opts);
        assert_eq!(
            report.report.mismatches, 0,
            "{:#?}",
            report.report.mismatch_details
        );
        let stats = handle.service().store().tables().stats();
        assert_eq!(stats.generates, 3, "one generation per distinct video: {stats:?}");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn single_connection_pipelines_many_sessions() {
        let handle = EventServer::spawn(EventConfig {
            loops: 1,
            ..EventConfig::default()
        })
        .unwrap();
        let mut opts = MuxOptions::new(8);
        opts.backend = Backend::Bola;
        opts.conns = 1;
        opts.loops = 1;
        let report = run_mux_load(handle.addr(), &opts);
        assert_eq!(report.report.mismatches, 0);
        assert!(report.report.p50_us > 0.0);
    }
}
