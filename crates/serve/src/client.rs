//! Client side: a typed wrapper over the keep-alive HTTP client, and
//! [`RemoteController`] — a [`BitrateController`] that outsources every
//! decision to a running decision server over a real socket.
//!
//! `RemoteController` is what makes the load generator *closed-loop*: the
//! emulated player's simulation loop calls `decide` exactly as it would an
//! in-process controller, and the call becomes a `POST /decision`
//! round-trip carrying the player's observed state. Per-call round-trip
//! latencies are recorded for the benchmark report.

use crate::proto::{
    decode_bulk_reply, encode_bulk, BulkSlot, DecisionReply, DecisionRequest, ProtoError,
    SessionSpec,
};
use abr_core::{BitrateController, ControllerContext, Decision};
use abr_net::http::{HttpClient, HttpError};
use abr_video::LevelIdx;
use bytes::Bytes;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Client-side failures talking to the decision server.
#[derive(Debug)]
pub enum ServeError {
    /// Transport or framing failure.
    Http(HttpError),
    /// The server answered with a non-200 status.
    Status(u16, String),
    /// The response body did not decode.
    Proto(ProtoError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Http(e) => write!(f, "http: {e}"),
            ServeError::Status(code, body) => write!(f, "server said {code}: {body}"),
            ServeError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

/// A typed connection to the decision server (one keep-alive socket).
pub struct ServeClient {
    http: HttpClient<TcpStream>,
}

impl ServeClient {
    /// Connects to a decision server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { http: HttpClient::new(stream) })
    }

    fn post_ok(&mut self, path: &str, body: String) -> Result<String, ServeError> {
        let resp = self.http.post(path, Bytes::from(body), "text/plain")?;
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        if resp.status != 200 {
            return Err(ServeError::Status(resp.status, text.trim().to_string()));
        }
        Ok(text)
    }

    /// Registers a session; returns its id.
    pub fn register(&mut self, spec: &SessionSpec) -> Result<u64, ServeError> {
        let body = self.post_ok("/session", spec.encode())?;
        body.trim()
            .strip_prefix("sid ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ServeError::Proto(ProtoError::Bad(format!("sid reply {body:?}"))))
    }

    /// Requests the decision for one chunk.
    pub fn decision(&mut self, req: &DecisionRequest) -> Result<DecisionReply, ServeError> {
        let body = self.post_ok("/decision", req.encode())?;
        DecisionReply::decode(&body).map_err(ServeError::Proto)
    }

    /// Requests decisions for a whole batch of sessions in one
    /// `POST /decisions` round-trip. Slots are positional: `slots[i]`
    /// answers `reqs[i]`, carrying either the decision or the (status,
    /// message) refusal the scalar endpoint would have returned.
    pub fn decisions(&mut self, reqs: &[DecisionRequest]) -> Result<Vec<BulkSlot>, ServeError> {
        let body = self.post_ok("/decisions", encode_bulk(reqs))?;
        let slots = decode_bulk_reply(&body).map_err(ServeError::Proto)?;
        if slots.len() != reqs.len() {
            return Err(ServeError::Proto(ProtoError::Bad(format!(
                "{} requests but {} reply slots",
                reqs.len(),
                slots.len()
            ))));
        }
        Ok(slots)
    }

    /// Retires a session.
    pub fn close_session(&mut self, sid: u64) -> Result<(), ServeError> {
        self.post_ok("/close", format!("sid {sid}\n")).map(|_| ())
    }

    /// Fetches the plain-text metrics page.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let resp = self.http.get("/metrics")?;
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        if resp.status != 200 {
            return Err(ServeError::Status(resp.status, text));
        }
        Ok(text)
    }
}

/// A [`BitrateController`] whose `decide` is a network round-trip to the
/// decision server. Panics on transport or protocol failure — in the load
/// generator that is exactly the loud failure the differential gate wants.
pub struct RemoteController {
    client: ServeClient,
    sid: u64,
    latencies_nanos: Vec<u64>,
}

impl RemoteController {
    /// Connects and registers `spec`, returning a controller ready to
    /// drive a session.
    pub fn register(addr: SocketAddr, spec: &SessionSpec) -> Result<Self, ServeError> {
        let mut client = ServeClient::connect(addr).map_err(HttpError::Io)?;
        let sid = client.register(spec)?;
        Ok(Self { client, sid, latencies_nanos: Vec::new() })
    }

    /// The server-assigned session id.
    pub fn sid(&self) -> u64 {
        self.sid
    }

    /// Round-trip latencies of every decision so far, nanoseconds.
    pub fn latencies_nanos(&self) -> &[u64] {
        &self.latencies_nanos
    }

    /// Closes the remote session, returning the recorded latencies.
    pub fn finish(mut self) -> Result<Vec<u64>, ServeError> {
        self.client.close_session(self.sid)?;
        Ok(std::mem::take(&mut self.latencies_nanos))
    }
}

impl BitrateController for RemoteController {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let req = DecisionRequest::from_context(self.sid, ctx);
        let start = Instant::now();
        let reply = self
            .client
            .decision(&req)
            .unwrap_or_else(|e| panic!("remote decision for chunk {} failed: {e}", ctx.chunk_index));
        self.latencies_nanos.push(start.elapsed().as_nanos() as u64);
        Decision {
            level: LevelIdx(reply.level),
            startup_wait_secs: reply.startup_wait_secs,
        }
    }

    fn reset(&mut self) {
        // Sessions are single-use: run_session resets at start, which must
        // not disturb the server-side state registered for this session.
    }
}
