//! The wire protocol of the decision service.
//!
//! Three POST endpoints, all carrying plain-text bodies of `key value`
//! lines (one per line, `\n`-separated):
//!
//! * `POST /session` — register a session. The body carries the backend,
//!   predictor, MPC horizon, the session-accounting knobs of
//!   [`abr_sim::SimConfig`], the QoE weights, and — after a line reading
//!   just `manifest` — the video as a DASH MPD document. Response body:
//!   `sid <id>`.
//! * `POST /decision` — request the bitrate for one chunk. The client
//!   reports its chunk index, current buffer level and (for every chunk
//!   after the first) the level, measured throughput and download time of
//!   the chunk that just finished. Response body: `level <idx>` plus an
//!   optional `startup_wait <secs>` line.
//! * `POST /close` — retire a session (`sid <id>`).
//!
//! All floats are encoded with Rust's shortest round-trip-exact `f64`
//! formatting and decoded with `str::parse`, so every value crosses the
//! wire bit-for-bit — the foundation of the remote-vs-in-process
//! differential guarantee.

use crate::backend::{Backend, PredictorKind};
use abr_core::ControllerContext;
use abr_net::mpd;
use abr_sim::{RobustBound, SimConfig};
use abr_video::{LiveSchedule, QoeWeights, QualityFn, Video};

/// Errors decoding a protocol body.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// A required key was missing.
    Missing(&'static str),
    /// A value failed to parse.
    Bad(String),
    /// The manifest failed to parse.
    Manifest(String),
    /// A feature the wire format cannot express.
    Unsupported(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Missing(k) => write!(f, "missing field {k}"),
            ProtoError::Bad(what) => write!(f, "bad field: {what}"),
            ProtoError::Manifest(what) => write!(f, "bad manifest: {what}"),
            ProtoError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Everything `POST /session` registers.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Decision backend (controller family).
    pub backend: Backend,
    /// Throughput predictor maintained server-side.
    pub predictor: PredictorKind,
    /// MPC look-ahead horizon, chunks.
    pub horizon: usize,
    /// Buffer capacity `B_max`, seconds.
    pub buffer_max_secs: f64,
    /// Robust lower-bound statistic.
    pub robust_bound: RobustBound,
    /// Prediction-error tracking window, chunks.
    pub error_window: usize,
    /// Low-buffer flag threshold, seconds.
    pub low_buffer_threshold_secs: f64,
    /// Low-buffer history window, chunks.
    pub low_buffer_window_chunks: usize,
    /// QoE weights (drive the MPC objective and the FastMPC table).
    pub weights: QoeWeights,
    /// Shared-bottleneck group this session declares itself part of;
    /// sessions with the same id are jointly allocated by the server's
    /// fairness coordinator. `None` opts out of coordination entirely.
    pub bottleneck: Option<String>,
    /// Live availability schedule; `None` registers a VOD session. A live
    /// session crosses the wire as `mode live` plus the schedule's two
    /// knobs, and its decision requests must carry the wall clock (`now`).
    pub live: Option<LiveSchedule>,
    /// The video, registered via its manifest.
    pub video: Video,
}

impl SessionSpec {
    /// A spec with the paper's session-accounting defaults for `backend`
    /// over `video`.
    pub fn paper_default(backend: Backend, video: Video) -> Self {
        let sim = SimConfig::paper_default();
        Self {
            backend,
            predictor: PredictorKind::Harmonic,
            horizon: 5,
            buffer_max_secs: sim.buffer_max_secs,
            robust_bound: sim.robust_bound,
            error_window: sim.error_window,
            low_buffer_threshold_secs: sim.low_buffer_threshold_secs,
            low_buffer_window_chunks: sim.low_buffer_window_chunks,
            weights: sim.weights,
            bottleneck: None,
            live: None,
            video,
        }
    }

    /// The [`SimConfig`] an in-process twin must run with to match this
    /// session decision-for-decision (first-chunk startup; live when the
    /// spec is live).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            buffer_max_secs: self.buffer_max_secs,
            live: self.live,
            weights: self.weights.clone(),
            error_window: self.error_window,
            robust_bound: self.robust_bound,
            low_buffer_threshold_secs: self.low_buffer_threshold_secs,
            low_buffer_window_chunks: self.low_buffer_window_chunks,
            ..SimConfig::paper_default()
        }
    }

    /// Encodes the registration body.
    pub fn encode(&self) -> String {
        let w = &self.weights;
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("backend {}\n", self.backend.token()));
        out.push_str(&format!("predictor {}\n", self.predictor.encode()));
        out.push_str(&format!("horizon {}\n", self.horizon));
        out.push_str(&format!("buffer_max {}\n", self.buffer_max_secs));
        out.push_str(&format!(
            "robust_bound {}\n",
            match self.robust_bound {
                RobustBound::MaxError => "max",
                RobustBound::MeanError => "mean",
            }
        ));
        out.push_str(&format!("error_window {}\n", self.error_window));
        out.push_str(&format!(
            "low_buffer_threshold {}\n",
            self.low_buffer_threshold_secs
        ));
        out.push_str(&format!(
            "low_buffer_window {}\n",
            self.low_buffer_window_chunks
        ));
        out.push_str(&format!("lambda {}\n", w.lambda));
        out.push_str(&format!("mu {}\n", w.mu));
        out.push_str(&format!("mu_s {}\n", w.mu_s));
        out.push_str(&format!("mu_event {}\n", w.mu_event));
        // Latency only matters to live sessions; omitting the zero keeps
        // every VOD registration body byte-identical to the pre-live wire.
        if w.w_lat != 0.0 {
            out.push_str(&format!("w_lat {}\n", w.w_lat));
        }
        out.push_str(&encode_quality(&w.quality));
        if let Some(id) = &self.bottleneck {
            out.push_str(&format!("bottleneck {id}\n"));
        }
        if let Some(live) = &self.live {
            out.push_str("mode live\n");
            out.push_str(&format!("encode_delay {}\n", live.encode_delay_secs));
            out.push_str(&format!("max_buffer_live {}\n", live.max_buffer_secs));
        }
        out.push_str("manifest\n");
        out.push_str(&mpd::generate(&self.video));
        out
    }

    /// Decodes a registration body.
    pub fn decode(body: &str) -> Result<Self, ProtoError> {
        let (fields, manifest) = split_fields(body)?;
        let manifest = manifest.ok_or(ProtoError::Missing("manifest"))?;
        let video =
            mpd::parse(manifest).map_err(|e| ProtoError::Manifest(e.to_string()))?;
        let backend_tok = lookup(&fields, "backend")?;
        let backend = Backend::parse(backend_tok)
            .ok_or_else(|| ProtoError::Bad(format!("unknown backend {backend_tok:?}")))?;
        let predictor = PredictorKind::decode(lookup(&fields, "predictor")?)?;
        let robust_bound = match lookup(&fields, "robust_bound")? {
            "max" => RobustBound::MaxError,
            "mean" => RobustBound::MeanError,
            other => return Err(ProtoError::Bad(format!("robust_bound {other:?}"))),
        };
        let live = match lookup(&fields, "mode") {
            Ok("live") => Some(LiveSchedule {
                encode_delay_secs: parse_field(&fields, "encode_delay")?,
                max_buffer_secs: parse_field(&fields, "max_buffer_live")?,
            }),
            Ok(other) => return Err(ProtoError::Bad(format!("mode {other:?}"))),
            Err(_) => None,
        };
        let spec = Self {
            backend,
            predictor,
            horizon: parse_field(&fields, "horizon")?,
            buffer_max_secs: parse_field(&fields, "buffer_max")?,
            robust_bound,
            error_window: parse_field(&fields, "error_window")?,
            low_buffer_threshold_secs: parse_field(&fields, "low_buffer_threshold")?,
            low_buffer_window_chunks: parse_field(&fields, "low_buffer_window")?,
            weights: QoeWeights {
                lambda: parse_field(&fields, "lambda")?,
                mu: parse_field(&fields, "mu")?,
                mu_s: parse_field(&fields, "mu_s")?,
                mu_event: parse_field(&fields, "mu_event")?,
                w_lat: match lookup(&fields, "w_lat") {
                    Ok(v) => v.parse().map_err(|_| ProtoError::Bad("w_lat".into()))?,
                    Err(_) => 0.0,
                },
                quality: decode_quality(lookup(&fields, "quality")?)?,
            },
            bottleneck: lookup(&fields, "bottleneck").ok().map(str::to_string),
            live,
            video,
        };
        if spec.horizon == 0 {
            return Err(ProtoError::Bad("horizon must be positive".into()));
        }
        if !(spec.buffer_max_secs >= spec.video.chunk_secs()) {
            return Err(ProtoError::Bad(
                "buffer_max must hold at least one chunk".into(),
            ));
        }
        if let Some(live) = &spec.live {
            if !(live.encode_delay_secs >= 0.0) || !live.encode_delay_secs.is_finite() {
                return Err(ProtoError::Bad("encode_delay must be non-negative".into()));
            }
            if !(live.max_buffer_secs >= spec.video.chunk_secs()) {
                return Err(ProtoError::Bad(
                    "max_buffer_live must hold at least one chunk".into(),
                ));
            }
        }
        Ok(spec)
    }
}

fn encode_quality(q: &QualityFn) -> String {
    match q {
        QualityFn::Identity => "quality identity\n".to_string(),
        QualityFn::Log { r0, scale } => format!("quality log {r0} {scale}\n"),
        QualityFn::Saturating { cap_kbps } => format!("quality saturating {cap_kbps}\n"),
        other => {
            // Callers registering exotic quality maps get a clear decode
            // failure server-side instead of a silently different QoE.
            format!("quality unsupported {other:?}\n")
        }
    }
}

fn decode_quality(v: &str) -> Result<QualityFn, ProtoError> {
    let mut parts = v.split_whitespace();
    match parts.next() {
        Some("identity") => Ok(QualityFn::Identity),
        Some("log") => Ok(QualityFn::Log {
            r0: parse_f64(parts.next(), "quality log r0")?,
            scale: parse_f64(parts.next(), "quality log scale")?,
        }),
        Some("saturating") => Ok(QualityFn::Saturating {
            cap_kbps: parse_f64(parts.next(), "quality saturating cap")?,
        }),
        other => Err(ProtoError::Unsupported(format!("quality {other:?}"))),
    }
}

/// What the client reports about the chunk that just finished downloading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LastChunk {
    /// Ladder level that was delivered.
    pub level: usize,
    /// Measured throughput of the download, kbps.
    pub throughput_kbps: f64,
    /// Wall-clock download time, seconds.
    pub download_secs: f64,
}

/// One `POST /decision` body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRequest {
    /// Session id from registration.
    pub sid: u64,
    /// Index of the chunk about to be requested.
    pub chunk: usize,
    /// Current buffer level, seconds.
    pub buffer_secs: f64,
    /// Outcome of chunk `chunk - 1`; required for every chunk after the
    /// first, forbidden for chunk 0.
    pub last: Option<LastChunk>,
    /// The client's session wall clock, seconds since playback start.
    /// Required for live sessions (the server rebuilds the availability
    /// state from it); omitted — and the line absent — for VOD.
    pub now_secs: Option<f64>,
}

impl DecisionRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "sid {}\nchunk {}\nbuffer {}\n",
            self.sid, self.chunk, self.buffer_secs
        );
        if let Some(now) = self.now_secs {
            out.push_str(&format!("now {now}\n"));
        }
        if let Some(last) = &self.last {
            out.push_str(&format!(
                "last_level {}\nlast_tput {}\nlast_dl {}\n",
                last.level, last.throughput_kbps, last.download_secs
            ));
        }
        out
    }

    /// Builds the request a client sends for the player state in `ctx`,
    /// reconstructing the finished chunk's wall-clock download time from
    /// its size and measured throughput (reported for the server's logs,
    /// not used in the control state).
    pub fn from_context(sid: u64, ctx: &ControllerContext<'_>) -> Self {
        let last = (ctx.chunk_index > 0).then(|| {
            let level = ctx
                .prev_level
                .expect("chunk > 0 implies a previous level");
            let throughput_kbps = ctx
                .last_throughput_kbps
                .expect("chunk > 0 implies a measured throughput");
            LastChunk {
                level: level.get(),
                throughput_kbps,
                download_secs: ctx.video.chunk_size_kbits(ctx.chunk_index - 1, level)
                    / throughput_kbps,
            }
        });
        Self {
            sid,
            chunk: ctx.chunk_index,
            buffer_secs: ctx.buffer_secs,
            last,
            now_secs: ctx.live.as_ref().map(|l| l.now_secs),
        }
    }

    /// Decodes a request body.
    pub fn decode(body: &str) -> Result<Self, ProtoError> {
        let (fields, _) = split_fields(body)?;
        let chunk: usize = parse_field(&fields, "chunk")?;
        let last = match lookup(&fields, "last_level") {
            Ok(level) => Some(LastChunk {
                level: level
                    .parse()
                    .map_err(|_| ProtoError::Bad("last_level".into()))?,
                throughput_kbps: parse_field(&fields, "last_tput")?,
                download_secs: parse_field(&fields, "last_dl")?,
            }),
            Err(_) => None,
        };
        if chunk == 0 && last.is_some() {
            return Err(ProtoError::Bad("chunk 0 cannot report a last chunk".into()));
        }
        if chunk > 0 && last.is_none() {
            return Err(ProtoError::Missing("last_level"));
        }
        let now_secs = match lookup(&fields, "now") {
            Ok(v) => Some(v.parse().map_err(|_| ProtoError::Bad("now".into()))?),
            Err(_) => None,
        };
        Ok(Self {
            sid: parse_field(&fields, "sid")?,
            chunk,
            buffer_secs: parse_field(&fields, "buffer")?,
            last,
            now_secs,
        })
    }
}

/// One `POST /decision` response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionReply {
    /// The level to request next.
    pub level: usize,
    /// MPC's startup-wait directive, when the backend issues one.
    pub startup_wait_secs: Option<f64>,
}

impl DecisionReply {
    /// Encodes the response body.
    pub fn encode(&self) -> String {
        match self.startup_wait_secs {
            Some(w) => format!("level {}\nstartup_wait {w}\n", self.level),
            None => format!("level {}\n", self.level),
        }
    }

    /// Decodes a response body.
    pub fn decode(body: &str) -> Result<Self, ProtoError> {
        let (fields, _) = split_fields(body)?;
        let startup_wait_secs = match lookup(&fields, "startup_wait") {
            Ok(v) => Some(v.parse().map_err(|_| ProtoError::Bad("startup_wait".into()))?),
            Err(_) => None,
        };
        Ok(Self {
            level: parse_field(&fields, "level")?,
            startup_wait_secs,
        })
    }
}

/// One positional slot of a bulk `POST /decisions` reply: the decision,
/// or the per-slot refusal (`status`, single-line message) that the
/// scalar `/decision` endpoint would have answered with.
pub type BulkSlot = Result<DecisionReply, (u16, String)>;

/// Encodes a bulk `POST /decisions` body: a `count N` line, then the `N`
/// per-session request blocks separated by blank lines. Each block is
/// exactly one [`DecisionRequest::encode`] body, so every float crosses
/// the wire with the same bit-exact formatting as the scalar endpoint.
pub fn encode_bulk(reqs: &[DecisionRequest]) -> String {
    let mut out = String::with_capacity(16 + reqs.len() * 96);
    out.push_str(&format!("count {}\n", reqs.len()));
    for req in reqs {
        out.push('\n');
        out.push_str(&req.encode());
    }
    out
}

/// Decodes a bulk request body; the declared `count` must match the
/// number of blocks.
pub fn decode_bulk(body: &str) -> Result<Vec<DecisionRequest>, ProtoError> {
    let (count, blocks) = split_blocks(body)?;
    let reqs = blocks
        .iter()
        .map(|b| DecisionRequest::decode(b))
        .collect::<Result<Vec<_>, _>>()?;
    if reqs.len() != count {
        return Err(ProtoError::Bad(format!(
            "count {count} but {} request blocks",
            reqs.len()
        )));
    }
    Ok(reqs)
}

/// Encodes a bulk reply: `count N`, then one blank-line-separated block
/// per slot — a [`DecisionReply::encode`] body, or a single
/// `error <status> <message>` line for a refused slot. Slots are strictly
/// positional: slot `i` answers request block `i`.
pub fn encode_bulk_reply(slots: &[BulkSlot]) -> String {
    let mut out = String::with_capacity(16 + slots.len() * 32);
    out.push_str(&format!("count {}\n", slots.len()));
    for slot in slots {
        out.push('\n');
        match slot {
            Ok(reply) => out.push_str(&reply.encode()),
            Err((status, message)) => out.push_str(&format!("error {status} {message}\n")),
        }
    }
    out
}

/// Decodes a bulk reply body into positional slots.
pub fn decode_bulk_reply(body: &str) -> Result<Vec<BulkSlot>, ProtoError> {
    let (count, blocks) = split_blocks(body)?;
    let mut slots = Vec::with_capacity(blocks.len());
    for block in &blocks {
        if let Some(rest) = block.strip_prefix("error ") {
            let rest = rest.trim_end_matches('\n');
            let (status, message) = rest
                .split_once(' ')
                .ok_or_else(|| ProtoError::Bad(format!("error slot {rest:?}")))?;
            let status: u16 = status
                .parse()
                .map_err(|_| ProtoError::Bad(format!("error status {status:?}")))?;
            slots.push(Err((status, message.to_string())));
        } else {
            slots.push(Ok(DecisionReply::decode(block)?));
        }
    }
    if slots.len() != count {
        return Err(ProtoError::Bad(format!(
            "count {count} but {} reply blocks",
            slots.len()
        )));
    }
    Ok(slots)
}

/// Splits a bulk body into its declared count and blank-line-separated
/// blocks (each block returned with its trailing newlines intact).
fn split_blocks(body: &str) -> Result<(usize, Vec<String>), ProtoError> {
    let mut lines = body.lines();
    let count: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("count "))
        .ok_or(ProtoError::Missing("count"))?
        .trim()
        .parse()
        .map_err(|_| ProtoError::Bad("count".into()))?;
    let mut blocks = Vec::with_capacity(count);
    let mut block = String::new();
    // The sentinel empty line flushes a final block with no trailing
    // separator.
    for line in lines.chain(std::iter::once("")) {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            if !block.is_empty() {
                blocks.push(std::mem::take(&mut block));
            }
        } else {
            block.push_str(line);
            block.push('\n');
        }
    }
    Ok((count, blocks))
}

/// Splits a body into `key value` fields, stopping at a bare `manifest`
/// line; the remainder (if any) is returned as the manifest document.
fn split_fields(body: &str) -> Result<(Vec<(&str, &str)>, Option<&str>), ProtoError> {
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (line, after) = match rest.split_once('\n') {
            Some((l, a)) => (l, a),
            None => (rest, ""),
        };
        let line = line.trim_end_matches('\r');
        if line == "manifest" {
            return Ok((fields, Some(after)));
        }
        if !line.is_empty() {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| ProtoError::Bad(format!("line {line:?}")))?;
            fields.push((key, value));
        }
        rest = after;
    }
    Ok((fields, None))
}

fn lookup<'a>(fields: &[(&'a str, &'a str)], key: &'static str) -> Result<&'a str, ProtoError> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or(ProtoError::Missing(key))
}

fn parse_field<T: std::str::FromStr>(
    fields: &[(&str, &str)],
    key: &'static str,
) -> Result<T, ProtoError> {
    lookup(fields, key)?
        .parse()
        .map_err(|_| ProtoError::Bad(key.to_string()))
}

fn parse_f64(v: Option<&str>, what: &str) -> Result<f64, ProtoError> {
    v.ok_or_else(|| ProtoError::Bad(what.to_string()))?
        .parse()
        .map_err(|_| ProtoError::Bad(what.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;

    #[test]
    fn session_spec_round_trips_bit_exactly() {
        let mut spec = SessionSpec::paper_default(Backend::RobustMpc, envivio_video());
        spec.buffer_max_secs = 29.734_561_209_871_23;
        spec.low_buffer_threshold_secs = 7.000_000_000_000_001;
        spec.weights.mu = 2999.999_999_999_998;
        spec.predictor = PredictorKind::Ewma(0.648_297_134_665_43);
        spec.bottleneck = Some("cell-7".to_string());
        let back = SessionSpec::decode(&spec.encode()).unwrap();
        assert_eq!(back.bottleneck.as_deref(), Some("cell-7"));
        assert_eq!(back.backend, Backend::RobustMpc);
        assert_eq!(back.predictor, spec.predictor);
        assert_eq!(back.horizon, spec.horizon);
        assert_eq!(back.buffer_max_secs.to_bits(), spec.buffer_max_secs.to_bits());
        assert_eq!(
            back.low_buffer_threshold_secs.to_bits(),
            spec.low_buffer_threshold_secs.to_bits()
        );
        assert_eq!(back.weights.mu.to_bits(), spec.weights.mu.to_bits());
        assert_eq!(back.video.num_chunks(), spec.video.num_chunks());
        for k in 0..spec.video.num_chunks() {
            for l in 0..spec.video.ladder().len() {
                assert_eq!(
                    back.video
                        .chunk_size_kbits(k, abr_video::LevelIdx(l))
                        .to_bits(),
                    spec.video
                        .chunk_size_kbits(k, abr_video::LevelIdx(l))
                        .to_bits()
                );
            }
        }
    }

    #[test]
    fn live_spec_round_trips_and_vod_wire_is_unchanged() {
        let mut spec = SessionSpec::paper_default(Backend::RobustMpc, envivio_video());
        // A VOD spec encodes no live or latency lines at all.
        let vod_body = spec.encode();
        assert!(!vod_body.contains("mode "), "{vod_body}");
        assert!(!vod_body.contains("w_lat "), "{vod_body}");
        assert!(!vod_body.contains("now "), "{vod_body}");
        spec.live = Some(LiveSchedule {
            encode_delay_secs: 2.718_281_828_459_045,
            max_buffer_secs: 11.999_999_999_999_998,
        });
        spec.weights.w_lat = 0.012_345_678_901_234_567;
        let back = SessionSpec::decode(&spec.encode()).unwrap();
        let live = back.live.unwrap();
        assert_eq!(
            live.encode_delay_secs.to_bits(),
            spec.live.unwrap().encode_delay_secs.to_bits()
        );
        assert_eq!(
            live.max_buffer_secs.to_bits(),
            spec.live.unwrap().max_buffer_secs.to_bits()
        );
        assert_eq!(back.weights.w_lat.to_bits(), spec.weights.w_lat.to_bits());
        assert!(back.sim_config().live.is_some());
        // Live knobs are validated at decode time.
        let body = spec.encode();
        assert!(matches!(
            SessionSpec::decode(&body.replace("mode live", "mode vr")),
            Err(ProtoError::Bad(_))
        ));
        assert!(SessionSpec::decode(
            &body.replace("encode_delay 2.718281828459045", "encode_delay -1")
        )
        .is_err());
        assert!(SessionSpec::decode(
            &body.replace("max_buffer_live 11.999999999999998", "max_buffer_live 0.5")
        )
        .is_err());
        // The decision request carries the wall clock bit-exactly.
        let req = DecisionRequest {
            sid: 7,
            chunk: 3,
            buffer_secs: 4.25,
            last: Some(LastChunk { level: 1, throughput_kbps: 900.0, download_secs: 2.0 }),
            now_secs: Some(17.484_931_002_384_756),
        };
        let back = DecisionRequest::decode(&req.encode()).unwrap();
        assert_eq!(
            back.now_secs.unwrap().to_bits(),
            req.now_secs.unwrap().to_bits()
        );
    }

    #[test]
    fn decision_round_trips_bit_exactly() {
        let req = DecisionRequest {
            sid: 17,
            chunk: 9,
            buffer_secs: 13.482_910_476_123_456,
            last: Some(LastChunk {
                level: 3,
                throughput_kbps: 1523.456_789_012_345_6,
                download_secs: 3.141_592_653_589_793,
            }),
            now_secs: None,
        };
        let back = DecisionRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.sid, 17);
        assert_eq!(back.chunk, 9);
        assert_eq!(back.buffer_secs.to_bits(), req.buffer_secs.to_bits());
        let (a, b) = (back.last.unwrap(), req.last.unwrap());
        assert_eq!(a.level, b.level);
        assert_eq!(a.throughput_kbps.to_bits(), b.throughput_kbps.to_bits());
        assert_eq!(a.download_secs.to_bits(), b.download_secs.to_bits());

        let reply = DecisionReply {
            level: 4,
            startup_wait_secs: Some(0.123_456_789_012_345_68),
        };
        let back = DecisionReply::decode(&reply.encode()).unwrap();
        assert_eq!(back.level, 4);
        assert_eq!(
            back.startup_wait_secs.unwrap().to_bits(),
            reply.startup_wait_secs.unwrap().to_bits()
        );
        assert_eq!(
            DecisionReply::decode("level 2\n").unwrap(),
            DecisionReply { level: 2, startup_wait_secs: None }
        );
    }

    #[test]
    fn decode_rejects_inconsistent_requests() {
        assert!(matches!(
            DecisionRequest::decode("sid 1\nchunk 0\nbuffer 0\nlast_level 1\nlast_tput 5\nlast_dl 1\n"),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            DecisionRequest::decode("sid 1\nchunk 3\nbuffer 0\n"),
            Err(ProtoError::Missing("last_level"))
        ));
        assert!(matches!(
            DecisionRequest::decode("sid 1\nbuffer 0\n"),
            Err(ProtoError::Missing("chunk"))
        ));
        assert!(matches!(
            DecisionRequest::decode("garbage-no-space\n"),
            Err(ProtoError::Bad(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_specs() {
        let good = SessionSpec::paper_default(Backend::Rb, envivio_video()).encode();
        // An ungrouped spec stays ungrouped across the wire.
        assert!(SessionSpec::decode(&good).unwrap().bottleneck.is_none());
        assert!(matches!(
            SessionSpec::decode(&good.replace("backend rb", "backend hal9000")),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            SessionSpec::decode(&good.replace("horizon 5", "horizon 0")),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            SessionSpec::decode(&good.replace("quality identity", "quality cubic")),
            Err(ProtoError::Unsupported(_))
        ));
        // A chopped-off manifest must fail cleanly (cut mid-body so the
        // size list is visibly truncated, not just missing closing tags).
        let cut = &good[..good.len() / 2];
        assert!(SessionSpec::decode(cut).is_err());
        // No manifest at all.
        let no_manifest: String = good.lines().take(12).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            SessionSpec::decode(&no_manifest),
            Err(ProtoError::Missing("manifest"))
        ));
    }

    #[test]
    fn bulk_request_round_trips_bit_exactly() {
        let reqs = vec![
            DecisionRequest { sid: 3, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None },
            DecisionRequest {
                sid: 9,
                chunk: 17,
                buffer_secs: 21.937_812_046_512_345,
                last: Some(LastChunk {
                    level: 4,
                    throughput_kbps: 2_831.556_677_889_901,
                    download_secs: 1.059_283_746_501_982_3,
                }),
                now_secs: Some(68.123_456_789_012_34),
            },
            DecisionRequest { sid: 3, chunk: 1, buffer_secs: 4.0, last: Some(LastChunk {
                level: 0,
                throughput_kbps: 512.0,
                download_secs: 2.734_375,
            }), now_secs: None },
        ];
        let back = decode_bulk(&encode_bulk(&reqs)).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&reqs) {
            assert_eq!(a.sid, b.sid);
            assert_eq!(a.chunk, b.chunk);
            assert_eq!(a.buffer_secs.to_bits(), b.buffer_secs.to_bits());
            assert_eq!(a.now_secs.map(f64::to_bits), b.now_secs.map(f64::to_bits));
            match (&a.last, &b.last) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.level, y.level);
                    assert_eq!(x.throughput_kbps.to_bits(), y.throughput_kbps.to_bits());
                    assert_eq!(x.download_secs.to_bits(), y.download_secs.to_bits());
                }
                other => panic!("last mismatch: {other:?}"),
            }
        }
        // The empty batch is legal and round-trips.
        assert_eq!(decode_bulk(&encode_bulk(&[])).unwrap().len(), 0);
    }

    #[test]
    fn bulk_reply_round_trips_with_positional_errors() {
        let slots: Vec<BulkSlot> = vec![
            Ok(DecisionReply { level: 3, startup_wait_secs: None }),
            Err((404, "unknown session 77".to_string())),
            Ok(DecisionReply {
                level: 0,
                startup_wait_secs: Some(0.728_501_962_348_715_6),
            }),
            Err((409, "out of order: expected chunk 4, got 9".to_string())),
        ];
        let back = decode_bulk_reply(&encode_bulk_reply(&slots)).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back[0], slots[0]);
        assert_eq!(back[1], slots[1]);
        assert_eq!(back[3], slots[3]);
        let (a, b) = (back[2].as_ref().unwrap(), slots[2].as_ref().unwrap());
        assert_eq!(a.level, b.level);
        assert_eq!(
            a.startup_wait_secs.unwrap().to_bits(),
            b.startup_wait_secs.unwrap().to_bits()
        );
    }

    #[test]
    fn bulk_decode_rejects_bad_framing() {
        assert!(matches!(
            decode_bulk("sid 1\nchunk 0\nbuffer 0\n"),
            Err(ProtoError::Missing("count"))
        ));
        assert!(matches!(
            decode_bulk("count two\n\nsid 1\nchunk 0\nbuffer 0\n"),
            Err(ProtoError::Bad(_))
        ));
        // Declared count disagreeing with the block count.
        assert!(matches!(
            decode_bulk("count 2\n\nsid 1\nchunk 0\nbuffer 0\n"),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            decode_bulk_reply("count 1\n\nerror notanumber nope\n"),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            decode_bulk_reply("count 1\n\nerror 404\n"),
            Err(ProtoError::Bad(_))
        ));
    }

    #[test]
    fn from_context_matches_the_remote_controller_shape() {
        use abr_video::LevelIdx;
        let video = envivio_video();
        let ctx = ControllerContext {
            chunk_index: 5,
            buffer_secs: 11.25,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: Some(1500.0),
            robust_lower_kbps: Some(1200.0),
            last_throughput_kbps: Some(1421.875),
            recent_low_buffer: false,
            startup: false,
            video: &video,
            buffer_max_secs: 30.0,
            live: None,
        };
        let req = DecisionRequest::from_context(42, &ctx);
        assert_eq!(req.sid, 42);
        assert_eq!(req.chunk, 5);
        assert_eq!(req.buffer_secs.to_bits(), 11.25f64.to_bits());
        let last = req.last.unwrap();
        assert_eq!(last.level, 2);
        assert_eq!(last.throughput_kbps.to_bits(), 1421.875f64.to_bits());
        assert_eq!(
            last.download_secs.to_bits(),
            (video.chunk_size_kbits(4, LevelIdx(2)) / 1421.875).to_bits()
        );
        // Chunk 0 carries no report.
        let first = ControllerContext {
            chunk_index: 0,
            buffer_secs: 0.0,
            prev_level: None,
            prediction_kbps: None,
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: true,
            video: &video,
            buffer_max_secs: 30.0,
            live: None,
        };
        assert!(DecisionRequest::from_context(1, &first).last.is_none());
    }
}
