//! Server-side session state and the sharded store that holds it.
//!
//! [`SessionState::decide`] replicates `abr_sim::run_session_core`'s
//! per-chunk control state exactly, shifted by half a step: the simulator
//! does its post-download bookkeeping (low-buffer history, predictor
//! observation, previous-level update) at the *end* of chunk `k-1`, while
//! the server replays the identical bookkeeping at the *start* of the
//! request for chunk `k`, from the client's report of chunk `k-1`'s
//! outcome. Because every controller/predictor is deterministic and every
//! float crosses the wire bit-for-bit, the resulting
//! [`ControllerContext`] — and therefore the decision — is bit-identical
//! to the in-process run. The differential tests in this crate enforce
//! that claim.
//!
//! Sessions live in [`SessionStore`]: N independently mutexed shards keyed
//! by session id, so concurrent workers serving different sessions almost
//! never contend on the same lock.

use crate::proto::{DecisionReply, DecisionRequest, SessionSpec};
use abr_core::{BitrateController, ControllerContext};
use abr_fastmpc::{TableStore, TableStoreConfig};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::RobustBound;
use abr_video::{LevelIdx, LiveSchedule, Video};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a decision request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum DecideError {
    /// No session with that id.
    UnknownSession(u64),
    /// The client skipped or repeated a chunk.
    OutOfOrder {
        /// The chunk index the server expected next.
        expected: usize,
        /// The chunk index the client asked about.
        got: usize,
    },
    /// Every chunk of the video has already been decided.
    SessionComplete,
    /// The reported last-chunk level is off the ladder.
    BadLevel(usize),
    /// A live session's request arrived without the wall clock (`now`)
    /// the server needs to rebuild the availability state.
    MissingClock,
}

impl std::fmt::Display for DecideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecideError::UnknownSession(sid) => write!(f, "unknown session {sid}"),
            DecideError::OutOfOrder { expected, got } => {
                write!(f, "out of order: expected chunk {expected}, got {got}")
            }
            DecideError::SessionComplete => write!(f, "session complete"),
            DecideError::BadLevel(l) => write!(f, "level {l} off the ladder"),
            DecideError::MissingClock => write!(f, "live session needs a `now` clock"),
        }
    }
}

impl std::error::Error for DecideError {}

/// One registered session's control state.
pub struct SessionState {
    backend_token: &'static str,
    controller: Box<dyn BitrateController>,
    predictor: ErrorTracked<Box<dyn Predictor>>,
    video: Video,
    /// The buffer cap the controller sees: `B_max`, additionally clamped
    /// by the live schedule's `max_buffer_secs` for live sessions —
    /// exactly `run_session_core`'s effective cap.
    buffer_max_secs: f64,
    /// The availability schedule for live sessions; `None` is VOD.
    live: Option<LiveSchedule>,
    /// Live latency at the most recent decision, for the latency
    /// histogram on `GET /metrics`; always `None` for VOD sessions.
    last_live_latency: Option<f64>,
    robust_bound: RobustBound,
    low_buffer_threshold_secs: f64,
    low_buffer_window_chunks: usize,
    low_buffer_history: VecDeque<bool>,
    next_chunk: usize,
    /// Buffer level the client reported at the previous decision — the
    /// value `run_session_core` pushes into the low-buffer history when it
    /// finishes that chunk.
    prev_buffer_secs: f64,
    prev_level: Option<LevelIdx>,
    last_throughput: Option<f64>,
}

impl SessionState {
    /// Builds the state for a freshly registered session. FastMPC tables
    /// come from `tables`, the shared process-wide tiered store, so N
    /// sessions on the same (video, config) generate the table exactly
    /// once — and an evicted table comes back zero-copy from the warm
    /// tier instead of being regenerated.
    pub fn new(spec: SessionSpec, tables: &TableStore) -> Self {
        let effective_buffer_max = match &spec.live {
            Some(live) => spec.buffer_max_secs.min(live.max_buffer_secs),
            None => spec.buffer_max_secs,
        };
        let table = spec.backend.needs_table().then(|| {
            let mut cfg = abr_fastmpc::TableConfig::with_levels(
                spec.video.ladder().len(),
                effective_buffer_max,
            );
            cfg.weights = spec.weights.clone();
            if spec.live.is_some() {
                // Live lookups select availability-truncated horizon
                // slices; generate the full truncation range.
                let slices = cfg.horizon;
                cfg = cfg.live_slices(slices);
            }
            tables.ensure(&spec.video, effective_buffer_max, &cfg)
        });
        let mut controller = spec
            .backend
            .build(table.as_ref(), &spec.weights, spec.horizon);
        // Mirror run_session_core's reset-at-session-start.
        controller.reset();
        Self {
            backend_token: spec.backend.token(),
            controller,
            predictor: ErrorTracked::new(spec.predictor.build(), spec.error_window),
            video: spec.video,
            buffer_max_secs: effective_buffer_max,
            live: spec.live,
            last_live_latency: None,
            robust_bound: spec.robust_bound,
            low_buffer_threshold_secs: spec.low_buffer_threshold_secs,
            low_buffer_window_chunks: spec.low_buffer_window_chunks,
            low_buffer_history: VecDeque::new(),
            next_chunk: 0,
            prev_buffer_secs: 0.0,
            prev_level: None,
            last_throughput: None,
        }
    }

    /// Wire token of this session's backend (feeds per-backend metrics).
    pub fn backend_token(&self) -> &'static str {
        self.backend_token
    }

    /// Live latency at the most recent decision, seconds; `None` for VOD
    /// sessions (feeds the live latency histogram on `GET /metrics`).
    pub fn last_live_latency_secs(&self) -> Option<f64> {
        self.last_live_latency
    }

    /// Decides the bitrate for `req.chunk`, replaying the bookkeeping of
    /// the chunk the client just finished first.
    pub fn decide(&mut self, req: &DecisionRequest) -> Result<DecisionReply, DecideError> {
        self.decide_with(req, None)
    }

    /// [`decide`](Self::decide) with an optional coordinator override:
    /// `Some(level)` answers with the jointly allocated level instead of
    /// consulting the scalar controller. All session bookkeeping
    /// (ordering, low-buffer history, predictor observation) is identical
    /// either way, so a session whose overrides are all `None` is
    /// bit-exactly an uncoordinated session.
    pub fn decide_with(
        &mut self,
        req: &DecisionRequest,
        override_level: Option<usize>,
    ) -> Result<DecisionReply, DecideError> {
        if self.next_chunk >= self.video.num_chunks() {
            return Err(DecideError::SessionComplete);
        }
        // Live catch-up skips chunks client-side (the player jumps over
        // stale chunks after a stall at the edge), so a live session may
        // legally move forward by more than one — but never repeat or
        // rewind. VOD stays strictly sequential.
        let in_order = if self.live.is_some() {
            req.chunk >= self.next_chunk && req.chunk < self.video.num_chunks()
        } else {
            req.chunk == self.next_chunk
        };
        if !in_order {
            return Err(DecideError::OutOfOrder {
                expected: self.next_chunk,
                got: req.chunk,
            });
        }
        let live_state = match (&self.live, req.now_secs) {
            (Some(live), Some(now)) => {
                // The single chokepoint shared with the in-process twin:
                // the availability state is rebuilt from the reported wall
                // clock through the same LiveSchedule::state arithmetic,
                // which is what keeps wire decisions bit-identical.
                Some(live.state(now, req.chunk, req.buffer_secs, self.video.chunk_secs()))
            }
            (Some(_), None) => return Err(DecideError::MissingClock),
            (None, _) => None,
        };

        // Post-download bookkeeping of chunk k-1, exactly as
        // run_session_core performs it before looping to chunk k.
        if let Some(last) = &req.last {
            if last.level >= self.video.ladder().len() {
                return Err(DecideError::BadLevel(last.level));
            }
            if self.low_buffer_history.len() == self.low_buffer_window_chunks {
                self.low_buffer_history.pop_front();
            }
            self.low_buffer_history
                .push_back(self.prev_buffer_secs < self.low_buffer_threshold_secs);
            self.predictor.observe(last.throughput_kbps);
            self.last_throughput = Some(last.throughput_kbps);
            self.prev_level = Some(LevelIdx(last.level));
        }

        let prediction = self.predictor.predict();
        let robust_lower = match self.robust_bound {
            RobustBound::MaxError => self.predictor.robust_lower_bound(),
            RobustBound::MeanError => {
                prediction.map(|p| p / (1.0 + self.predictor.mean_error()))
            }
        };
        let ctx = ControllerContext {
            chunk_index: req.chunk,
            buffer_secs: req.buffer_secs,
            prev_level: self.prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: robust_lower,
            last_throughput_kbps: self.last_throughput,
            recent_low_buffer: self.low_buffer_history.iter().any(|&b| b),
            startup: req.chunk == 0,
            video: &self.video,
            buffer_max_secs: self.buffer_max_secs,
            live: live_state,
        };
        self.last_live_latency = live_state.as_ref().map(|s| s.latency_secs);
        let decision = match override_level {
            Some(level) => abr_core::Decision {
                level: LevelIdx(level.min(self.video.ladder().len() - 1)),
                startup_wait_secs: None,
            },
            None => self.controller.decide(&ctx),
        };
        debug_assert!(
            decision.level.get() < self.video.ladder().len(),
            "{} chose out-of-range level",
            self.controller.name()
        );

        self.prev_buffer_secs = req.buffer_secs;
        self.next_chunk = req.chunk + 1;
        Ok(DecisionReply {
            level: decision.level.get(),
            startup_wait_secs: decision.startup_wait_secs,
        })
    }
}

/// Sharded session store: session ids map to shards round-robin, each
/// shard behind its own mutex.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<u64, SessionState>>>,
    next_id: AtomicU64,
    tables: Arc<TableStore>,
}

impl SessionStore {
    /// A store with `shards` independent locks (at least 1) and an
    /// unbounded, memory-only table store.
    pub fn new(shards: usize) -> Self {
        Self::with_table_config(shards, TableStoreConfig::default())
    }

    /// [`new`](Self::new) with an explicit table-store budget and spill
    /// policy (the million-video-fleet configuration).
    pub fn with_table_config(shards: usize, tables: TableStoreConfig) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            tables: Arc::new(TableStore::with_config(tables)),
        }
    }

    fn shard(&self, sid: u64) -> &Mutex<HashMap<u64, SessionState>> {
        &self.shards[(sid % self.shards.len() as u64) as usize]
    }

    /// Registers a session; returns its id.
    pub fn register(&self, spec: SessionSpec) -> u64 {
        let state = SessionState::new(spec, &self.tables);
        let sid = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shard(sid).lock().unwrap().insert(sid, state);
        sid
    }

    /// Runs `f` on session `sid` while holding only that shard's lock.
    pub fn with_session<R>(
        &self,
        sid: u64,
        f: impl FnOnce(&mut SessionState) -> R,
    ) -> Result<R, DecideError> {
        let mut shard = self.shard(sid).lock().unwrap();
        match shard.get_mut(&sid) {
            Some(state) => Ok(f(state)),
            None => Err(DecideError::UnknownSession(sid)),
        }
    }

    /// Resolves a whole batch of decision requests in one store pass:
    /// requests are grouped by shard and each touched shard's lock is
    /// taken exactly once, instead of once per request. Results are
    /// positional (`results[i]` answers `reqs[i]`); each carries the
    /// session's backend token when the session exists. Within a shard,
    /// requests resolve in batch order, so a batch may legally carry the
    /// same session twice with ascending chunk indices.
    pub fn decide_bulk(
        &self,
        reqs: &[DecisionRequest],
    ) -> Vec<(Option<&'static str>, Result<DecisionReply, DecideError>)> {
        self.decide_bulk_with(reqs, &[])
    }

    /// [`decide_bulk`](Self::decide_bulk) with positional coordinator
    /// overrides: `overrides[i]`, when present and `Some`, answers
    /// `reqs[i]` with the jointly allocated level. An empty or short
    /// slice means no override for the remaining slots.
    pub fn decide_bulk_with(
        &self,
        reqs: &[DecisionRequest],
        overrides: &[Option<usize>],
    ) -> Vec<(Option<&'static str>, Result<DecisionReply, DecideError>)> {
        let mut results: Vec<_> = reqs
            .iter()
            .map(|r| (None, Err(DecideError::UnknownSession(r.sid))))
            .collect();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, req) in reqs.iter().enumerate() {
            by_shard[(req.sid % self.shards.len() as u64) as usize].push(i);
        }
        for (shard, idxs) in self.shards.iter().zip(&by_shard) {
            if idxs.is_empty() {
                continue;
            }
            let mut shard = shard.lock().unwrap();
            for &i in idxs {
                if let Some(state) = shard.get_mut(&reqs[i].sid) {
                    let over = overrides.get(i).copied().flatten();
                    results[i] =
                        (Some(state.backend_token()), state.decide_with(&reqs[i], over));
                }
            }
        }
        results
    }

    /// Retires session `sid`; true if it existed.
    pub fn remove(&self, sid: u64) -> bool {
        self.shard(sid).lock().unwrap().remove(&sid).is_some()
    }

    /// Live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared FastMPC table store (for stats reporting).
    pub fn tables(&self) -> &Arc<TableStore> {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::proto::LastChunk;
    use abr_video::envivio_video;

    fn store() -> SessionStore {
        SessionStore::new(4)
    }

    fn first_request(sid: u64) -> DecisionRequest {
        DecisionRequest { sid, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None }
    }

    #[test]
    fn sessions_step_in_chunk_order() {
        let s = store();
        let sid = s.register(SessionSpec::paper_default(Backend::Bb, envivio_video()));
        let r0 = s.with_session(sid, |st| st.decide(&first_request(sid))).unwrap().unwrap();
        assert!(r0.level < 5);
        // Repeating chunk 0 is out of order.
        let err = s.with_session(sid, |st| st.decide(&first_request(sid))).unwrap();
        assert_eq!(err, Err(DecideError::OutOfOrder { expected: 1, got: 0 }));
        // Chunk 1 with a report goes through.
        let req = DecisionRequest {
            sid,
            chunk: 1,
            buffer_secs: 4.0,
            last: Some(LastChunk { level: r0.level, throughput_kbps: 900.0, download_secs: 2.0 }),
            now_secs: None,
        };
        s.with_session(sid, |st| st.decide(&req)).unwrap().unwrap();
    }

    #[test]
    fn bad_level_and_unknown_session_are_rejected() {
        let s = store();
        let sid = s.register(SessionSpec::paper_default(Backend::Rb, envivio_video()));
        assert!(matches!(
            s.with_session(99_999, |_| ()),
            Err(DecideError::UnknownSession(99_999))
        ));
        s.with_session(sid, |st| st.decide(&first_request(sid)).unwrap()).unwrap();
        let req = DecisionRequest {
            sid,
            chunk: 1,
            buffer_secs: 4.0,
            last: Some(LastChunk { level: 42, throughput_kbps: 900.0, download_secs: 2.0 }),
            now_secs: None,
        };
        assert_eq!(
            s.with_session(sid, |st| st.decide(&req)).unwrap(),
            Err(DecideError::BadLevel(42))
        );
    }

    #[test]
    fn exhausted_sessions_report_complete_and_remove_retires() {
        let video = envivio_video();
        let n = video.num_chunks();
        let s = store();
        let sid = s.register(SessionSpec::paper_default(Backend::Bb, video));
        let mut level = s
            .with_session(sid, |st| st.decide(&first_request(sid)).unwrap().level)
            .unwrap();
        for k in 1..n {
            let req = DecisionRequest {
                sid,
                chunk: k,
                buffer_secs: 10.0,
                last: Some(LastChunk { level, throughput_kbps: 1200.0, download_secs: 1.0 }),
                now_secs: None,
            };
            level = s.with_session(sid, |st| st.decide(&req).unwrap().level).unwrap();
        }
        let req = DecisionRequest {
            sid,
            chunk: n,
            buffer_secs: 10.0,
            last: Some(LastChunk { level, throughput_kbps: 1200.0, download_secs: 1.0 }),
            now_secs: None,
        };
        assert_eq!(
            s.with_session(sid, |st| st.decide(&req)).unwrap(),
            Err(DecideError::SessionComplete)
        );
        assert_eq!(s.len(), 1);
        assert!(s.remove(sid));
        assert!(!s.remove(sid));
        assert!(s.is_empty());
    }

    #[test]
    fn decide_bulk_is_positional_and_matches_scalar() {
        let s = store();
        // Two live sessions plus a scalar twin of the first.
        let a = s.register(SessionSpec::paper_default(Backend::FastMpc, envivio_video()));
        let b = s.register(SessionSpec::paper_default(Backend::Bb, envivio_video()));
        let twin = s.register(SessionSpec::paper_default(Backend::FastMpc, envivio_video()));
        let batch = [first_request(a), first_request(777), first_request(b)];
        let results = s.decide_bulk(&batch);
        assert_eq!(results.len(), 3);
        let (token_a, ra) = &results[0];
        assert_eq!(*token_a, Some("fastmpc"));
        let ra = ra.clone().unwrap();
        assert_eq!(results[1], (None, Err(DecideError::UnknownSession(777))));
        assert_eq!(results[2].0, Some("bb"));
        assert!(results[2].1.is_ok());
        // Bulk resolution equals the scalar path bit-for-bit.
        let scalar = s
            .with_session(twin, |st| st.decide(&first_request(twin)))
            .unwrap()
            .unwrap();
        assert_eq!(ra.level, scalar.level);
        // A duplicate sid in one batch resolves in order: chunk 1 then an
        // out-of-order repeat of chunk 1.
        let next = DecisionRequest {
            sid: a,
            chunk: 1,
            buffer_secs: 4.0,
            last: Some(LastChunk {
                level: ra.level,
                throughput_kbps: 1100.0,
                download_secs: 1.5,
            }),
            now_secs: None,
        };
        let results = s.decide_bulk(&[next, next]);
        assert!(results[0].1.is_ok());
        assert_eq!(
            results[1].1,
            Err(DecideError::OutOfOrder { expected: 2, got: 1 })
        );
        // The empty batch is a no-op.
        assert!(s.decide_bulk(&[]).is_empty());
    }

    #[test]
    fn live_sessions_need_a_clock_and_tolerate_catch_up_skips() {
        let s = store();
        let mut spec = SessionSpec::paper_default(Backend::RobustMpc, envivio_video());
        spec.live = Some(LiveSchedule { encode_delay_secs: 2.0, max_buffer_secs: 12.0 });
        spec.weights.w_lat = 0.1;
        let sid = s.register(spec);
        // A live request without the wall clock is refused.
        let no_clock = DecisionRequest { sid, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None };
        assert_eq!(
            s.with_session(sid, |st| st.decide(&no_clock)).unwrap(),
            Err(DecideError::MissingClock)
        );
        let first = DecisionRequest { now_secs: Some(0.0), ..no_clock };
        let r0 = s.with_session(sid, |st| st.decide(&first)).unwrap().unwrap();
        assert!(s
            .with_session(sid, |st| st.last_live_latency_secs())
            .unwrap()
            .is_some());
        // Catch-up: the client skipped chunks 1-3 after an edge stall; the
        // forward jump is accepted, a rewind is not.
        let jump = DecisionRequest {
            sid,
            chunk: 4,
            buffer_secs: 3.5,
            last: Some(LastChunk { level: r0.level, throughput_kbps: 800.0, download_secs: 2.5 }),
            now_secs: Some(21.0),
        };
        s.with_session(sid, |st| st.decide(&jump)).unwrap().unwrap();
        let rewind = DecisionRequest { chunk: 2, ..jump };
        assert_eq!(
            s.with_session(sid, |st| st.decide(&rewind)).unwrap(),
            Err(DecideError::OutOfOrder { expected: 5, got: 2 })
        );
    }

    #[test]
    fn live_fastmpc_tables_are_sliced_and_keyed_apart_from_vod() {
        let s = store();
        s.register(SessionSpec::paper_default(Backend::FastMpc, envivio_video()));
        let mut live = SessionSpec::paper_default(Backend::FastMpc, envivio_video());
        live.live = Some(LiveSchedule { encode_delay_secs: 2.0, max_buffer_secs: 30.0 });
        let sid = s.register(live);
        // Same video and cap, but the live session's sliced table is a
        // distinct artifact from the VOD table.
        assert_eq!(s.tables().len(), 2, "live and VOD configs must not collide");
        let first = DecisionRequest {
            sid,
            chunk: 0,
            buffer_secs: 0.0,
            last: None,
            now_secs: Some(0.0),
        };
        s.with_session(sid, |st| st.decide(&first)).unwrap().unwrap();
    }

    #[test]
    fn fastmpc_sessions_share_one_table() {
        let s = store();
        for _ in 0..4 {
            s.register(SessionSpec::paper_default(Backend::FastMpc, envivio_video()));
        }
        assert_eq!(s.tables().len(), 1, "same config must reuse one table");
        let stats = s.tables().stats();
        assert_eq!(stats.generates, 1, "exactly one generation for one config");
        assert_eq!(stats.hot_hits, 3, "later registrations hit the hot tier");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn bounded_store_keeps_serving_after_eviction() {
        // A budget of ~one table forces the second registration's table to
        // evict the first; both sessions must still decide, and the first
        // config's return regenerates (no warm dir here) exactly once more.
        let probe = {
            let mut cfg = abr_fastmpc::TableConfig::with_levels(5, 30.0);
            cfg.weights =
                SessionSpec::paper_default(Backend::FastMpc, envivio_video()).weights;
            abr_fastmpc::FastMpcTable::generate(&envivio_video(), 30.0, cfg)
                .binary_size_bytes()
        };
        let s = SessionStore::with_table_config(
            2,
            TableStoreConfig { hot_budget_bytes: probe + probe / 2, warm_dir: None },
        );
        let a = s.register(SessionSpec::paper_default(Backend::FastMpc, envivio_video()));
        let mut other = SessionSpec::paper_default(Backend::FastMpc, envivio_video());
        other.buffer_max_secs = 24.0; // different table config => different key
        let b = s.register(other);
        assert!(s.tables().stats().evictions >= 1, "budget must evict");
        for sid in [a, b] {
            s.with_session(sid, |st| st.decide(&first_request(sid)).unwrap())
                .unwrap();
        }
    }
}
