//! `abr-serve` — the concurrent ABR decision service.
//!
//! Section 6 of the paper deploys FastMPC by moving the MPC computation
//! server-side: "the client sends its state to the server in each HTTP
//! request and receives the bitrate decision". This crate builds that
//! deployment shape for *every* controller in the workspace:
//!
//! * [`server`] — a multi-threaded HTTP/1.1 service on `abr-net`'s
//!   substrate: `POST /session` registers a session (backend, predictor,
//!   QoE knobs, and the video as a DASH manifest), `POST /decision` maps a
//!   reported player state to the next bitrate, `POST /decisions` answers
//!   a whole batch of session states in one round-trip (positional slots,
//!   per-slot errors), `GET /metrics` exposes
//!   plain-text counters. An eager acceptor thread plus a fixed worker
//!   pool; FastMPC tables come from one process-wide
//!   [`abr_fastmpc::TableStore`] — a tiered catalog with a bounded hot
//!   tier and an mmap'd warm tier — so a thousand sessions on the same
//!   video generate the table exactly once, and a million-video fleet
//!   stays inside a fixed memory budget.
//! * [`store`] — per-session control state in a sharded, mutexed map. The
//!   state update replays `abr_sim::run_session_core`'s bookkeeping from
//!   the client's reports, which is what makes remote decisions
//!   *bit-identical* to in-process ones.
//! * [`coordinator`] — the shared-bottleneck fairness coordinator:
//!   sessions declaring the same `bottleneck <id>` at registration are
//!   jointly allocated (greedy marginal-utility climb under an estimated
//!   capacity budget, with a configurable fairness term), while startup
//!   chunks and under-strength groups fall back to the scalar backend
//!   bit-exactly. Counters surface on `GET /metrics`.
//! * [`event`] — the event-driven server: N epoll readiness loops with
//!   non-blocking per-connection state machines (incremental parsing,
//!   buffered writes, backpressure, idle reaping). Same [`AbrService`],
//!   same wire protocol, same bit-identity contract as [`server`], but
//!   scaling to tens of thousands of concurrent connections.
//! * [`client`] — [`RemoteController`]: a `BitrateController` whose
//!   `decide` is a real socket round-trip, pluggable into any driver.
//! * [`loadgen`] — the closed-loop load generator: K concurrent
//!   trace-driven sessions, exact client-observed latency quantiles, and
//!   the remote-vs-in-process differential check. With `batch > 1` it
//!   becomes an aggregating proxy, coalescing a group of sessions into
//!   one bulk request per chunk tick.
//! * [`muxload`] — the multiplexed load generator: a few loop threads
//!   drive thousands of virtual closed-loop sessions over a bounded pool
//!   of pipelined keep-alive connections, recording exact latency samples
//!   and the full decision sequence for differential verification.
//!
//! The differential guarantee is the crate's spine: `tests/differential.rs`
//! and the `serve-bench` harness gate assert that every remote session's
//! decision sequence equals the in-process `run_session` sequence for the
//! same (trace, video, controller, seed) — bit for bit, including QoE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod coordinator;
pub mod event;
pub mod loadgen;
pub mod metrics;
pub mod muxload;
pub mod proto;
pub mod server;
pub mod store;

pub use backend::{Backend, PredictorKind};
pub use client::{RemoteController, ServeClient, ServeError};
pub use coordinator::{
    CoordinatedController, CoordinatorConfig, CoordinatorStats, FairnessCoordinator,
};
pub use event::{EventConfig, EventHandle, EventServer};
pub use loadgen::{run_load, LoadOptions, LoadReport};
pub use metrics::{exact_quantile_us, LatencyHistogram, LoopStats, Metrics};
pub use muxload::{run_mux_load, MuxCatalog, MuxOptions};
pub use proto::{
    decode_bulk, decode_bulk_reply, encode_bulk, encode_bulk_reply, BulkSlot, DecisionReply,
    DecisionRequest, LastChunk, ProtoError, SessionSpec,
};
pub use server::{AbrService, DecisionServer, ServerHandle};
pub use store::{DecideError, SessionState, SessionStore};
