//! The event-driven decision server: N readiness loops, non-blocking
//! connection state machines, tens of thousands of live sessions.
//!
//! The thread-per-connection server in [`crate::server`] tops out around
//! a few hundred concurrent sessions — each connection pins an OS thread
//! through every blocking read. This module replaces that shape with the
//! classic readiness architecture on `abr_net::poll`'s raw epoll
//! wrappers:
//!
//! * **N event-loop threads**, each owning one `epoll` instance and an
//!   exclusive set of connections. Loop 0 also owns the (non-blocking)
//!   listener; accepted sockets are distributed round-robin, crossing
//!   loops through a mutexed mailbox plus an `eventfd` wakeup. After the
//!   handoff a connection is touched by exactly one thread — no
//!   per-connection locks anywhere.
//! * **A per-connection state machine**: an incremental
//!   [`RequestParser`] absorbs whatever bytes each readable event
//!   yields (partial heads, split bodies, pipelined keep-alive bursts),
//!   complete requests dispatch into the shared [`AbrService`] (same
//!   sharded store, same FastMPC table cache as the blocking server),
//!   and responses accumulate in an output buffer drained on
//!   writability.
//! * **Backpressure**: a connection whose peer stops reading accumulates
//!   response bytes; past a high-water mark the loop stops *reading*
//!   from it (interest drops `EPOLLIN`) until the kernel drains the
//!   queue below the low-water mark — a slow consumer throttles itself,
//!   not the loop.
//! * **FD hygiene**: idle connections are closed on a deadline sweep,
//!   `EPOLLERR`/`EPOLLHUP`/`ECONNRESET` tear down the one connection
//!   (never the loop), and shutdown releases the listener first, then
//!   drains buffered responses for a bounded window before closing
//!   everything.
//!
//! The protocol, the session semantics, and the bit-identity contract
//! are unchanged: both servers route through [`AbrService::handle`], so
//! a decision sequence observed through this server is byte-identical
//! to one observed through the blocking server — CI diffs them.

use crate::metrics::LoopStats;
use crate::server::AbrService;
use abr_net::http::{
    HttpError, ParseStep, RequestParser, Response, MAX_REQUEST_BODY_BYTES,
};
use abr_net::poll::{self, Epoll, Event, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`EventServer::spawn`].
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Event-loop threads (at least 1). Loop 0 owns the listener.
    pub loops: usize,
    /// Global cap on simultaneously open connections; sockets accepted
    /// beyond it are closed immediately.
    pub max_conns: usize,
    /// Request-body cap in bytes (mirrors the blocking server's).
    pub body_cap: usize,
    /// Connections with no traffic for this long are closed by the
    /// sweep. Protects the fd budget from peers that connect and stall.
    pub idle_timeout: Duration,
    /// Session-store shards.
    pub shards: usize,
    /// Tiered table-store sizing (hot-tier byte budget, warm spill dir).
    /// The default is unbounded and memory-only.
    pub tables: abr_fastmpc::TableStoreConfig,
}

impl EventConfig {
    /// Defaults with `loops` event-loop threads.
    pub fn with_loops(loops: usize) -> Self {
        Self { loops, ..Self::default() }
    }
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            loops: 2,
            max_conns: 16 * 1024,
            body_cap: MAX_REQUEST_BODY_BYTES,
            idle_timeout: Duration::from_secs(60),
            shards: 16,
            tables: abr_fastmpc::TableStoreConfig::default(),
        }
    }
}

/// Spawns the event-driven decision server.
pub struct EventServer;

impl EventServer {
    /// Starts the server with `cfg`, binding a loopback listener.
    pub fn spawn(cfg: EventConfig) -> io::Result<EventHandle> {
        Self::spawn_with_service(cfg, None)
    }

    /// [`spawn`](Self::spawn), optionally sharing an existing service
    /// (so two transports can front one session store in tests).
    pub fn spawn_with_service(
        cfg: EventConfig,
        service: Option<Arc<AbrService>>,
    ) -> io::Result<EventHandle> {
        let cfg = EventConfig { loops: cfg.loops.max(1), ..cfg };
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = service.unwrap_or_else(|| {
            Arc::new(AbrService::with_table_config(cfg.shards, cfg.tables.clone()))
        });
        let stop = Arc::new(AtomicBool::new(false));
        let open_total = Arc::new(AtomicUsize::new(0));
        let stats: Vec<Arc<LoopStats>> =
            (0..cfg.loops).map(|_| Arc::new(LoopStats::default())).collect();
        service.metrics().attach_loops(stats.clone());
        let wakers: Vec<Arc<EventFd>> = (0..cfg.loops)
            .map(|_| EventFd::new().map(Arc::new))
            .collect::<io::Result<_>>()?;
        let mailboxes: Vec<Arc<Mutex<Vec<RawFd>>>> =
            (0..cfg.loops).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

        let mut listener = Some(listener);
        let threads = (0..cfg.loops)
            .map(|me| {
                let worker = LoopWorker {
                    me,
                    cfg: cfg.clone(),
                    listener: listener.take().filter(|_| me == 0),
                    service: Arc::clone(&service),
                    stats: Arc::clone(&stats[me]),
                    stop: Arc::clone(&stop),
                    open_total: Arc::clone(&open_total),
                    wake: Arc::clone(&wakers[me]),
                    wakers: wakers.clone(),
                    mailboxes: mailboxes.clone(),
                    rr: 0,
                    conns: Vec::new(),
                    gens: Vec::new(),
                    free: Vec::new(),
                };
                std::thread::Builder::new()
                    .name(format!("abr-evloop-{me}"))
                    .spawn(move || worker.run())
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(EventHandle {
            addr,
            service,
            stop,
            wakers,
            mailboxes,
            threads,
        })
    }
}

/// A running event-driven server; dropping the handle shuts it down.
pub struct EventHandle {
    addr: SocketAddr,
    service: Arc<AbrService>,
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<EventFd>>,
    mailboxes: Vec<Arc<Mutex<Vec<RawFd>>>>,
    threads: Vec<JoinHandle<()>>,
}

impl EventHandle {
    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service, for in-process inspection (metrics, store).
    pub fn service(&self) -> &AbrService {
        &self.service
    }

    /// Graceful shutdown: signals every loop, which release the listener
    /// immediately (the port frees before this returns), drain buffered
    /// responses for a bounded window, then close their connections.
    /// Idempotent; joins all loop threads.
    pub fn shutdown(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        for w in &self.wakers {
            let _ = w.signal();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Sockets handed off but never collected by their target loop.
        for mb in &self.mailboxes {
            for fd in mb.lock().unwrap().drain(..) {
                let _ = poll::close(fd);
            }
        }
    }
}

impl Drop for EventHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Epoll token of the listener (loop 0 only).
const TOK_LISTEN: u64 = u64::MAX;
/// Epoll token of the loop's wakeup eventfd.
const TOK_WAKE: u64 = u64::MAX - 1;

/// Stop reading from a connection once this many response bytes are
/// queued unsent (slow-consumer backpressure)...
const HIGH_WATER: usize = 256 * 1024;
/// ...and resume reading once the queue drains below this.
const LOW_WATER: usize = 64 * 1024;

/// One non-blocking connection owned by exactly one loop.
struct Conn {
    fd: RawFd,
    /// Token-reuse guard: bumped every time this slot is reassigned, so
    /// readiness events from a previous occupant are ignored.
    gen: u32,
    parser: RequestParser,
    /// Buffered response bytes awaiting the socket.
    out: Vec<u8>,
    /// Sent prefix of `out`.
    out_pos: usize,
    last_active: Instant,
    /// Close once `out` fully drains (peer EOF, `connection: close`, or
    /// unrecoverable parse failure).
    close_after_flush: bool,
    /// Reading paused by the backpressure high-water mark.
    paused: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
}

struct LoopWorker {
    me: usize,
    cfg: EventConfig,
    listener: Option<TcpListener>,
    service: Arc<AbrService>,
    stats: Arc<LoopStats>,
    stop: Arc<AtomicBool>,
    open_total: Arc<AtomicUsize>,
    wake: Arc<EventFd>,
    wakers: Vec<Arc<EventFd>>,
    mailboxes: Vec<Arc<Mutex<Vec<RawFd>>>>,
    /// Round-robin distribution cursor (loop 0 only).
    rr: usize,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on close so readiness events queued
    /// for a previous occupant never reach the slot's next connection.
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl LoopWorker {
    fn run(mut self) {
        let Ok(epoll) = Epoll::new() else { return };
        if epoll.add(self.wake.fd(), EPOLLIN, TOK_WAKE).is_err() {
            return;
        }
        if let Some(l) = &self.listener {
            if epoll.add(l.as_raw_fd(), EPOLLIN, TOK_LISTEN).is_err() {
                return;
            }
        }
        let mut events = vec![Event::default(); 1024];
        let mut last_sweep = Instant::now();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let timeout_ms = if drain_deadline.is_some() { 10 } else { 250 };
            let n = match epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => break,
            };
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            for ev in events.iter().take(n).copied() {
                match ev.token() {
                    TOK_WAKE => {
                        let _ = self.wake.drain();
                        self.collect_mailbox(&epoll, drain_deadline.is_some());
                    }
                    TOK_LISTEN => self.accept_ready(&epoll),
                    token => self.conn_ready(&epoll, token, ev, drain_deadline.is_some()),
                }
            }
            if self.stop.load(Ordering::Acquire) && drain_deadline.is_none() {
                // Graceful shutdown, phase 1: stop accepting — dropping
                // the listener releases the port right away — then give
                // buffered responses a bounded window to drain.
                self.listener = None;
                self.collect_mailbox(&epoll, true);
                drain_deadline = Some(Instant::now() + Duration::from_secs(1));
            }
            if let Some(deadline) = drain_deadline {
                let pending = self
                    .conns
                    .iter()
                    .flatten()
                    .any(|c| c.out_pos < c.out.len());
                if !pending || Instant::now() >= deadline {
                    break;
                }
            } else if last_sweep.elapsed() >= Duration::from_secs(1) {
                self.sweep_idle(&epoll);
                last_sweep = Instant::now();
            }
        }
        // Phase 2: everything still open goes down with the loop.
        for slot in 0..self.conns.len() {
            self.close_conn(&epoll, slot);
        }
    }

    // -- accept / distribute ------------------------------------------------

    fn accept_ready(&mut self, epoll: &Epoll) {
        let Some(listener_fd) = self.listener.as_ref().map(|l| l.as_raw_fd()) else {
            return;
        };
        loop {
            match poll::accept4(listener_fd) {
                Ok(Some(fd)) => {
                    if self.open_total.load(Ordering::Relaxed) >= self.cfg.max_conns
                        || self.stop.load(Ordering::Acquire)
                    {
                        let _ = poll::close(fd);
                        continue;
                    }
                    let _ = poll::set_tcp_nodelay(fd);
                    self.open_total.fetch_add(1, Ordering::Relaxed);
                    self.stats.accepts.fetch_add(1, Ordering::Relaxed);
                    let target = self.rr % self.cfg.loops;
                    self.rr += 1;
                    if target == self.me {
                        self.register_conn(epoll, fd);
                    } else {
                        self.mailboxes[target].lock().unwrap().push(fd);
                        let _ = self.wakers[target].signal();
                    }
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    fn collect_mailbox(&mut self, epoll: &Epoll, draining: bool) {
        let handoff: Vec<RawFd> =
            std::mem::take(&mut *self.mailboxes[self.me].lock().unwrap());
        for fd in handoff {
            if draining {
                let _ = poll::close(fd);
                self.open_total.fetch_sub(1, Ordering::Relaxed);
            } else {
                self.register_conn(epoll, fd);
            }
        }
    }

    fn register_conn(&mut self, epoll: &Epoll, fd: RawFd) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens[slot];
        let interest = EPOLLIN | EPOLLRDHUP;
        if epoll.add(fd, interest, token(slot, gen)).is_err() {
            let _ = poll::close(fd);
            self.free.push(slot);
            self.open_total.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.conns[slot] = Some(Conn {
            fd,
            gen,
            parser: RequestParser::with_cap(self.cfg.body_cap),
            out: Vec::new(),
            out_pos: 0,
            last_active: Instant::now(),
            close_after_flush: false,
            paused: false,
            interest,
        });
        self.stats.open_conns.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, epoll: &Epoll, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = epoll.delete(conn.fd);
        let _ = poll::close(conn.fd);
        self.gens[slot] = conn.gen.wrapping_add(1);
        self.free.push(slot);
        self.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        self.open_total.fetch_sub(1, Ordering::Relaxed);
    }

    // -- per-connection events ----------------------------------------------

    fn conn_ready(&mut self, epoll: &Epoll, tok: u64, ev: Event, draining: bool) {
        let slot = (tok & 0xffff_ffff) as usize;
        let gen = (tok >> 32) as u32;
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return; // stale event for an already-closed slot
        };
        if conn.gen != gen {
            return; // slot was recycled; event belongs to the old socket
        }
        if ev.readiness() & (EPOLLERR | EPOLLHUP) != 0 {
            // Peer reset or kernel error: this connection is done; the
            // loop itself is untouched.
            self.close_conn(epoll, slot);
            return;
        }
        if ev.writable() && !self.flush(epoll, slot) {
            return; // closed while flushing
        }
        if (ev.readable() || ev.readiness() & EPOLLRDHUP != 0) && !draining {
            self.read_ready(epoll, slot);
        }
    }

    fn read_ready(&mut self, epoll: &Epoll, slot: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(c) => c,
                None => return,
            };
            match poll::read(conn.fd, &mut buf) {
                Ok(Some(0)) => {
                    // Clean EOF. Anything still owed (buffered responses)
                    // is flushed first; a half-received request is
                    // abandoned with the connection.
                    if conn.parser.is_clean() && conn.out_pos >= conn.out.len() {
                        self.close_conn(epoll, slot);
                    } else {
                        conn.close_after_flush = true;
                        self.flush(epoll, slot);
                    }
                    return;
                }
                Ok(Some(n)) => {
                    conn.last_active = Instant::now();
                    conn.parser.feed(&buf[..n]);
                    if !self.process_requests(slot) {
                        // `connection: close` or a poisoned stream: flush
                        // what we owe and close.
                        self.flush(epoll, slot);
                        return;
                    }
                    let conn = self.conns[slot].as_mut().expect("conn alive");
                    if conn.out.len() - conn.out_pos > HIGH_WATER {
                        break; // backpressure: stop reading, go flush
                    }
                    if n < buf.len() {
                        break; // kernel buffer drained
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // ECONNRESET and friends: drop the connection only.
                    self.close_conn(epoll, slot);
                    return;
                }
            }
        }
        if let Some(conn) = self.conns[slot].as_ref() {
            if conn.parser.buffered() > 0 {
                // The byte stream paused mid-message; the state machine
                // holds the partial request until the next readable event.
                self.stats.partial_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.flush(epoll, slot);
    }

    /// Drains every complete pipelined request through the service.
    /// Returns `false` when the connection should close after flushing
    /// (close requested or the request stream is unrecoverable).
    fn process_requests(&mut self, slot: usize) -> bool {
        loop {
            let step = match self.conns[slot].as_mut() {
                Some(c) => c.parser.next_request(),
                None => return false,
            };
            match step {
                ParseStep::Complete(req) => {
                    let close = req
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    let resp = self.service.handle(&req);
                    let conn = self.conns[slot].as_mut().expect("conn alive");
                    let _ = resp.write_to(&mut conn.out);
                    if close {
                        conn.close_after_flush = true;
                        return false;
                    }
                }
                ParseStep::Incomplete => return true,
                ParseStep::Failed { error, recoverable } => {
                    let resp = match &error {
                        HttpError::BodyTooLarge { len, cap } => {
                            Response::payload_too_large(*len, *cap)
                        }
                        HttpError::Malformed(what) => Response::bad_request(what),
                        other => Response::bad_request(&other.to_string()),
                    };
                    let conn = self.conns[slot].as_mut().expect("conn alive");
                    let _ = resp.write_to(&mut conn.out);
                    if !recoverable {
                        conn.close_after_flush = true;
                        return false;
                    }
                    // Recoverable (size caps): the parser already
                    // resynced; keep serving this connection.
                }
            }
        }
    }

    /// Writes as much buffered output as the socket accepts. Returns
    /// `false` if the connection was closed (fatal error, or
    /// close-after-flush completed).
    fn flush(&mut self, epoll: &Epoll, slot: usize) -> bool {
        let conn = match self.conns[slot].as_mut() {
            Some(c) => c,
            None => return false,
        };
        while conn.out_pos < conn.out.len() {
            let remaining = conn.out.len() - conn.out_pos;
            match poll::write(conn.fd, &conn.out[conn.out_pos..]) {
                Ok(Some(n)) => {
                    conn.out_pos += n;
                    conn.last_active = Instant::now();
                    if n < remaining {
                        self.stats.short_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(None) => {
                    // Kernel send queue full: wait for writability.
                    self.stats.short_writes.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(_) => {
                    self.close_conn(epoll, slot);
                    return false;
                }
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            // A burst can balloon the buffer; don't pin that memory for
            // the connection's lifetime.
            if conn.out.capacity() > HIGH_WATER {
                conn.out = Vec::new();
            }
            if conn.close_after_flush {
                self.close_conn(epoll, slot);
                return false;
            }
        }
        self.update_interest(epoll, slot);
        true
    }

    /// Recomputes the epoll interest mask from connection state:
    /// `EPOLLIN` unless paused by backpressure, `EPOLLOUT` while output
    /// is pending, `EPOLLRDHUP` always.
    fn update_interest(&mut self, epoll: &Epoll, slot: usize) {
        let conn = match self.conns[slot].as_mut() {
            Some(c) => c,
            None => return,
        };
        let pending = conn.out.len() - conn.out_pos;
        if conn.paused {
            if pending < LOW_WATER {
                conn.paused = false;
            }
        } else if pending > HIGH_WATER {
            conn.paused = true;
        }
        let mut want = EPOLLRDHUP;
        if !conn.paused {
            want |= EPOLLIN;
        }
        if pending > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            if epoll.modify(conn.fd, want, token(slot, conn.gen)).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn sweep_idle(&mut self, epoll: &Epoll) {
        let deadline = self.cfg.idle_timeout;
        for slot in 0..self.conns.len() {
            let expired = self.conns[slot]
                .as_ref()
                .is_some_and(|c| c.last_active.elapsed() > deadline);
            if expired {
                self.close_conn(epoll, slot);
            }
        }
    }
}

fn token(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::proto::{DecisionRequest, SessionSpec};
    use abr_net::http::{HttpClient, Request, Response};
    use abr_video::envivio_video;
    use bytes::Bytes;
    use std::io::{BufReader, Read as _, Write as _};
    use std::net::TcpStream;

    fn quick_cfg() -> EventConfig {
        EventConfig { loops: 2, ..EventConfig::default() }
    }

    fn client(handle: &EventHandle) -> HttpClient<TcpStream> {
        HttpClient::new(TcpStream::connect(handle.addr()).unwrap())
    }

    fn register(c: &mut HttpClient<TcpStream>, backend: Backend) -> u64 {
        let spec = SessionSpec::paper_default(backend, envivio_video());
        let resp = c
            .post("/session", Bytes::from(spec.encode()), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        String::from_utf8_lossy(&resp.body)
            .trim()
            .strip_prefix("sid ")
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn registers_decides_and_reports_loop_metrics() {
        let handle = EventServer::spawn(quick_cfg()).unwrap();
        let mut c = client(&handle);
        let sid = register(&mut c, Backend::Bb);
        let req = DecisionRequest { sid, chunk: 0, buffer_secs: 0.0, last: None, now_secs: None };
        let resp = c
            .post("/decision", Bytes::from(req.encode()), "text/plain")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).starts_with("level "));

        let text = String::from_utf8_lossy(&c.get("/metrics").unwrap().body).into_owned();
        assert!(text.contains("sessions_registered 1"), "{text}");
        assert!(text.contains("decisions{backend=bb} 1"), "{text}");
        // Event-loop observability: the accept and the open connection
        // are visible per loop.
        assert!(text.contains("loop_accepts{loop=0} 1"), "{text}");
        assert!(text.contains("conns_open 1"), "{text}");
        assert!(text.contains("loop_wakeups{loop=0}"), "{text}");
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let handle = EventServer::spawn(quick_cfg()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Three pipelined requests in one write: a registration between
        // two metrics probes.
        let spec = SessionSpec::paper_default(Backend::Rb, envivio_video());
        let mut wire = Vec::new();
        Request::get("/metrics").write_to(&mut wire).unwrap();
        Request::post("/session", Bytes::from(spec.encode()), "text/plain")
            .write_to(&mut wire)
            .unwrap();
        Request::get("/metrics").write_to(&mut wire).unwrap();
        stream.write_all(&wire).unwrap();
        let mut reader = BufReader::new(stream);
        let first = Response::read_from(&mut reader).unwrap();
        let second = Response::read_from(&mut reader).unwrap();
        let third = Response::read_from(&mut reader).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(second.status, 200);
        assert!(String::from_utf8_lossy(&second.body).starts_with("sid "));
        assert_eq!(third.status, 200);
        // The third response observes the registration made by the
        // second request — strict in-order processing.
        assert!(
            String::from_utf8_lossy(&third.body).contains("sessions_registered 1"),
            "{}",
            String::from_utf8_lossy(&third.body)
        );
    }

    #[test]
    fn malformed_request_gets_400_and_loops_survive() {
        let handle = EventServer::spawn(quick_cfg()).unwrap();
        let mut bad = TcpStream::connect(handle.addr()).unwrap();
        bad.write_all(b"NOT-HTTP-AT-ALL\r\n\r\n").unwrap();
        let resp = Response::read_from(&mut BufReader::new(&mut bad)).unwrap();
        assert_eq!(resp.status, 400);
        // The poisoned connection is closed by the server...
        let mut probe = [0u8; 1];
        bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(bad.read(&mut probe).unwrap(), 0);
        // ...while fresh connections keep being served.
        let mut c = client(&handle);
        assert_eq!(c.get("/metrics").unwrap().status, 200);
    }

    #[test]
    fn oversized_body_gets_413_and_the_connection_survives() {
        let cfg = EventConfig { body_cap: 256, ..quick_cfg() };
        let handle = EventServer::spawn(cfg).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let body = "x".repeat(512);
        stream
            .write_all(
                format!("POST /session HTTP/1.1\r\ncontent-length: 512\r\n\r\n{body}")
                    .as_bytes(),
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = Response::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 413);
        // Unlike the blocking server, the same connection keeps working:
        // the parser skipped the refused body and resynced.
        let mut wire = Vec::new();
        Request::get("/metrics").write_to(&mut wire).unwrap();
        stream.write_all(&wire).unwrap();
        let resp = Response::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn idle_connections_are_closed_on_deadline() {
        let cfg = EventConfig {
            idle_timeout: Duration::from_millis(200),
            ..quick_cfg()
        };
        let handle = EventServer::spawn(cfg).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Never send a byte: the sweep must reap us (sweep cadence is
        // 1 s, so allow a few seconds).
        let mut probe = [0u8; 1];
        let n = stream.read(&mut probe).unwrap();
        assert_eq!(n, 0, "server should close the idle connection");
    }

    #[test]
    fn abrupt_peer_reset_kills_only_that_connection() {
        let handle = EventServer::spawn(quick_cfg()).unwrap();
        for _ in 0..4 {
            // Request, then vanish without reading the response: closing
            // with unread data pending makes the kernel send RST, which
            // the loop must absorb as a single-connection death.
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut wire = Vec::new();
            Request::get("/metrics").write_to(&mut wire).unwrap();
            stream.write_all(&wire).unwrap();
            drop(stream);
        }
        std::thread::sleep(Duration::from_millis(100));
        let mut c = client(&handle);
        assert_eq!(c.get("/metrics").unwrap().status, 200);
    }

    #[test]
    fn max_conns_cap_sheds_excess_connections() {
        let cfg = EventConfig { max_conns: 2, ..quick_cfg() };
        let handle = EventServer::spawn(cfg).unwrap();
        let mut keep: Vec<TcpStream> = Vec::new();
        let mut shed = 0;
        for _ in 0..6 {
            let mut s = TcpStream::connect(handle.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut wire = Vec::new();
            Request::get("/metrics").write_to(&mut wire).unwrap();
            s.write_all(&wire).unwrap();
            match Response::read_from(&mut BufReader::new(s.try_clone().unwrap())) {
                Ok(resp) => {
                    assert_eq!(resp.status, 200);
                    keep.push(s);
                }
                Err(_) => shed += 1, // closed by the cap before answering
            }
        }
        assert!(shed >= 4, "cap 2 must shed most of 6 connections, shed {shed}");
        assert!(!keep.is_empty(), "some connections must be served");
    }

    #[test]
    fn shutdown_releases_the_listener_port() {
        let mut handle = EventServer::spawn(quick_cfg()).unwrap();
        let addr = handle.addr();
        {
            let mut c = client(&handle);
            assert_eq!(c.get("/metrics").unwrap().status, 200);
            // Client closes first, so no server-side TIME_WAIT lingers on
            // the port.
        }
        handle.shutdown();
        handle.shutdown(); // idempotent
        // The exact port can be bound again: the listener fd was released.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "rebind failed: {:?}", rebind.err());
        // And the old server no longer answers.
        drop(rebind);
        assert!(TcpStream::connect(addr).is_err() || {
            let mut c = HttpClient::new(TcpStream::connect(addr).unwrap());
            c.get("/metrics").is_err()
        });
    }

    #[test]
    fn connections_spread_across_loops() {
        let cfg = EventConfig { loops: 2, ..EventConfig::default() };
        let handle = EventServer::spawn(cfg).unwrap();
        let mut clients: Vec<_> = (0..4).map(|_| client(&handle)).collect();
        for c in &mut clients {
            assert_eq!(c.get("/metrics").unwrap().status, 200);
        }
        let text =
            String::from_utf8_lossy(&clients[0].get("/metrics").unwrap().body).into_owned();
        assert!(text.contains("conns_open 4"), "{text}");
        // Round-robin distribution: both loops own connections.
        assert!(text.contains("loop_open_conns{loop=0} 2"), "{text}");
        assert!(text.contains("loop_open_conns{loop=1} 2"), "{text}");
    }
}
